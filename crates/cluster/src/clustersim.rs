//! The 75-machine cluster simulation (Fig 9).
//!
//! The main loop is a coupled DES: boxes interact through the fabric, so
//! event routing stays serial and deterministic. The expensive part —
//! advancing many independent boxes to the same instant — fans out across
//! a persistent [`WorkerPool`] of [`ClusterConfig::threads`] workers
//! whenever enough boxes are due at once (controller poll ticks line up
//! on every machine); each box's evolution between routed deliveries is
//! independent, so the parallel run is bit-identical to the serial one.

use std::collections::HashMap;

use indexserve::{BoxConfig, BoxEvent, BoxSim, FaultPlan, SecondaryKind, ServiceConfig};
use perfiso::PerfIsoConfig;
use qtrace::{OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::dist::{LogNormal, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::MachineConfig;
use simnet::{Delivery, NetConfig, NetSim, NodeId, TrafficClass};
use telemetry::{CpuBreakdown, LatencyRecorder, TelemetryMode};

use crate::pool::WorkerPool;
use crate::report::{ClusterReport, LayerStats};
use crate::topology::Topology;

/// Cluster experiment configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Cluster shape.
    pub topology: Topology,
    /// Per-index-machine hardware.
    pub machine: MachineConfig,
    /// Service model on each index machine.
    pub service: ServiceConfig,
    /// Secondary tenants on each index machine.
    pub secondary: SecondaryKind,
    /// PerfIso configuration per index machine.
    pub perfiso: Option<PerfIsoConfig>,
    /// Total offered load across the cluster (the paper uses 8 000 QPS,
    /// landing ~4 000 QPS on each machine of each row).
    pub qps_total: f64,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
    /// Median MLA aggregation cost (runs on the MLA's machine and contends
    /// with its colocated secondary).
    pub mla_agg_cost_us: f64,
    /// Fixed TLA processing cost per request (TLA machines run clean).
    pub tla_cost: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for advancing boxes in parallel: `0` = all available
    /// cores, `1` = serial. Results are bit-identical across thread counts.
    pub threads: usize,
    /// Cluster-wide fault timeline; each index box receives its slice
    /// (staged config rollouts reach only the leading boxes).
    pub fault: Option<std::sync::Arc<FaultPlan>>,
    /// Latency-recording backend for the boxes and the three layer
    /// recorders. `Exact` (the default) keeps every sample; `Sketch`
    /// bounds memory and adds a TLA sketch summary to the report.
    pub telemetry: TelemetryMode,
    /// Overload-resilience policy stamped onto every index box (`None` =
    /// the classic cluster with no admission control or retries).
    pub resilience: Option<std::sync::Arc<workloads::ResiliencePolicy>>,
}

impl ClusterConfig {
    /// The paper's §5.3 setup with the given secondary.
    pub fn paper_cluster(secondary: SecondaryKind, seed: u64) -> Self {
        ClusterConfig {
            topology: Topology::paper_cluster(),
            machine: MachineConfig::paper_server(),
            service: ServiceConfig::default(),
            secondary,
            perfiso: Some(PerfIsoConfig::paper_cluster()),
            qps_total: 8_000.0,
            warmup: SimDuration::from_millis(400),
            measure: SimDuration::from_millis(1_200),
            mla_agg_cost_us: 260.0,
            tla_cost: SimDuration::from_micros(80),
            seed,
            threads: 0,
            fault: None,
            telemetry: TelemetryMode::Exact,
            resilience: None,
        }
    }
}

const KIND_SHIFT: u32 = 60;
const REQ_SHIFT: u32 = 16;
const DROP_FLAG: u64 = 0x8000;

fn msg_token(kind: u64, req: u64, aux: u64) -> u64 {
    (kind << KIND_SHIFT) | (req << REQ_SHIFT) | aux
}

fn parse_token(token: u64) -> (u64, u64, u64) {
    (
        token >> KIND_SHIFT,
        (token >> REQ_SHIFT) & ((1 << (KIND_SHIFT - REQ_SHIFT)) - 1),
        token & 0xFFFF,
    )
}

#[derive(Debug)]
struct RequestState {
    tla: u32,
    tla_arrival: SimTime,
    mla_arrival: SimTime,
    row: u32,
    mla_col: u32,
    pending_cols: u32,
    degraded: bool,
    done: bool,
    measured: bool,
}

/// The cluster simulator.
pub struct ClusterSim {
    cfg: ClusterConfig,
    boxes: Vec<BoxSim>,
    net: NetSim,
    requests: Vec<RequestState>,
    /// Per-box map from local query index to request id.
    qmap: Vec<HashMap<u64, u64>>,
    /// Specs awaiting fan-out deliveries, with a remaining-use count.
    specs: HashMap<u64, (QuerySpec, u32)>,
    rr_tla: u32,
    rr_row: u32,
    rr_mla: Vec<u32>,
    agg_dist: LogNormal,
    rng: SimRng,
    local_lat: LatencyRecorder,
    mla_lat: LatencyRecorder,
    tla_lat: LatencyRecorder,
    completed: u64,
    degraded: u64,
    now: SimTime,
    /// Persistent advance workers (`None` when the run is serial).
    pool: Option<WorkerPool>,
    /// Reusable buffers for the per-step fabric drain and box drains.
    scratch_deliveries: Vec<Delivery>,
    scratch_events: Vec<BoxEvent>,
}

/// Minimum number of simultaneously-due boxes before the advance fans out
/// to worker threads; below this the spawn overhead beats the win.
const PARALLEL_ADVANCE_THRESHOLD: usize = 8;

impl ClusterSim {
    /// Builds all machines and the fabric.
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology.
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.topology.validate().expect("valid topology");
        let n_index = cfg.topology.index_machines();
        // One Arc per run: the 44 index boxes share the service and
        // controller configs instead of cloning them per machine.
        let service = std::sync::Arc::new(cfg.service.clone());
        let perfiso = cfg.perfiso.clone().map(std::sync::Arc::new);
        let boxes: Vec<BoxSim> = (0..n_index)
            .map(|i| {
                BoxSim::new(BoxConfig {
                    machine: cfg.machine,
                    service: std::sync::Arc::clone(&service),
                    hosted: Vec::new(),
                    secondary: cfg.secondary.clone(),
                    perfiso: perfiso.clone(),
                    fault: cfg
                        .fault
                        .as_ref()
                        .and_then(|p| p.slice_for_box(i as usize, n_index as usize))
                        .map(std::sync::Arc::new),
                    telemetry: cfg.telemetry,
                    resilience: cfg.resilience.clone(),
                    seed: cfg.seed ^ (0x9E37 * (i as u64 + 1)),
                })
            })
            .collect();
        let net = NetSim::new(
            NetConfig::default(),
            cfg.topology.total_machines(),
            cfg.seed ^ 0x7E7,
        );
        let qmap = (0..n_index).map(|_| HashMap::new()).collect();
        ClusterSim {
            agg_dist: LogNormal::from_median(cfg.mla_agg_cost_us, 0.4),
            rr_mla: vec![0; cfg.topology.rows as usize],
            boxes,
            net,
            requests: Vec::new(),
            qmap,
            specs: HashMap::new(),
            rr_tla: 0,
            rr_row: 0,
            rng: SimRng::seed_from_u64(cfg.seed ^ 0xC1B5),
            local_lat: cfg.telemetry.recorder(),
            mla_lat: cfg.telemetry.recorder(),
            tla_lat: cfg.telemetry.recorder(),
            completed: 0,
            degraded: 0,
            now: SimTime::ZERO,
            pool: match crate::fleet::effective_threads(cfg.threads) {
                0 | 1 => None,
                workers => Some(WorkerPool::new(workers)),
            },
            scratch_deliveries: Vec::with_capacity(64),
            scratch_events: Vec::with_capacity(64),
            cfg,
        }
    }

    /// Runs the experiment and produces the Fig 9-style report.
    pub fn run(self) -> ClusterReport {
        self.run_impl(None)
    }

    /// Like [`ClusterSim::run`] but reports loop progress to stderr every
    /// `every` iterations (diagnostic aid).
    pub fn run_traced(self, every: u64) -> ClusterReport {
        self.run_impl(Some(every.max(1)))
    }

    fn run_impl(mut self, trace_every: Option<u64>) -> ClusterReport {
        let total = self.cfg.warmup + self.cfg.measure;
        let end = SimTime::ZERO + total;
        let n_queries = (self.cfg.qps_total * total.as_secs_f64() * 1.02) as usize + 8;
        let trace = TraceGenerator::new(TraceConfig {
            queries: n_queries,
            ..TraceConfig::default()
        })
        .generate(self.cfg.seed ^ 0x7ACE);
        let mut client = OpenLoopClient::new(trace, self.cfg.qps_total, self.cfg.seed ^ 0xC1);

        let mut warm_bd: Option<Vec<CpuBreakdown>> = None;
        let warmup_end = SimTime::ZERO + self.cfg.warmup;
        let mut iters = 0u64;

        loop {
            let mut t = client.next_arrival_time().unwrap_or(SimTime::MAX);
            if let Some(n) = self.next_any_event() {
                t = t.min(n);
            }
            if t > end || t == SimTime::MAX {
                break;
            }
            if warm_bd.is_none() && t >= warmup_end {
                warm_bd = Some(self.boxes.iter().map(|b| b.breakdown()).collect());
            }
            self.now = t;
            while client.next_arrival_time() == Some(t) {
                let (_, spec) = client.pop().expect("peeked");
                self.on_client_arrival(t, spec);
            }
            self.step_components(t);
            iters += 1;
            if let Some(every) = trace_every {
                if iters.is_multiple_of(every) {
                    let box_next: Vec<String> = self
                        .boxes
                        .iter()
                        .map(|b| format!("{:?}", b.next_event_time()))
                        .collect();
                    eprintln!(
                        "main loop: iter={iters} now={t} completed={} arrival={:?} net={:?} boxes={:?}",
                        self.completed,
                        client.next_arrival_time(),
                        self.net.next_timer_at(),
                        box_next
                    );
                }
            }
        }

        // Drain the tail: requests in flight resolve within one timeout.
        let drain_until = end + self.cfg.service.timeout + SimDuration::from_millis(50);
        while let Some(t) = self.next_any_event().filter(|&t| t <= drain_until) {
            self.now = t;
            self.step_components(t);
            iters += 1;
            if let Some(every) = trace_every {
                if iters.is_multiple_of(every) {
                    eprintln!(
                        "drain loop: iter={iters} now={t} completed={}",
                        self.completed
                    );
                }
            }
        }

        let warm = warm_bd.unwrap_or_else(|| self.boxes.iter().map(|b| b.breakdown()).collect());
        let mut agg = CpuBreakdown::default();
        for (b, w) in self.boxes.iter().zip(warm.iter()) {
            agg.merge(&b.breakdown().since(w));
        }
        let mut faults = Vec::new();
        let mut resilience = telemetry::ResilienceStats::default();
        for (i, b) in self.boxes.iter_mut().enumerate() {
            let records = b.take_fault_records();
            if !records.is_empty() {
                faults.push(crate::report::BoxFaults {
                    box_index: i as u32,
                    faults: records,
                });
            }
            if let Some(r) = b.resilience_report() {
                resilience.merge(&r);
            }
        }
        ClusterReport {
            local: LayerStats::from_recorder(&mut self.local_lat),
            mla: LayerStats::from_recorder(&mut self.mla_lat),
            tla: LayerStats::from_recorder(&mut self.tla_lat),
            latency_sketch: self.tla_lat.sketch_summary(),
            completed: self.completed,
            degraded: self.degraded,
            mean_utilization: agg.utilization(),
            breakdown: agg,
            faults,
            resilience: (!resilience.is_empty()).then_some(resilience),
        }
    }

    /// Advances network and boxes to `t` and routes everything due.
    fn step_components(&mut self, t: SimTime) {
        self.net.advance_to(t);
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        deliveries.clear();
        self.net.drain_deliveries_into(&mut deliveries);
        for d in deliveries.drain(..) {
            self.on_delivery(t, d.to, d.token);
        }
        self.scratch_deliveries = deliveries;
        self.advance_due_boxes(t);
        for i in 0..self.boxes.len() {
            if self.boxes[i].has_events() {
                self.drain_box(i, t);
            }
        }
    }

    /// Advances every box with work due at or before `t`, handing the
    /// work to the persistent pool when enough boxes are due at the same
    /// instant (poll ticks line up across machines). Boxes evolve
    /// independently between routed deliveries, so the result is
    /// identical to advancing them one by one; the subsequent event drain
    /// always runs serially in box order.
    fn advance_due_boxes(&mut self, t: SimTime) {
        let due = self
            .boxes
            .iter()
            .filter(|b| b.next_event_time().is_some_and(|n| n <= t))
            .count();
        if due == 0 {
            return;
        }
        if due >= PARALLEL_ADVANCE_THRESHOLD {
            if let Some(pool) = self.pool.as_mut() {
                pool.advance_due(&mut self.boxes, t);
                return;
            }
        }
        for b in &mut self.boxes {
            if b.next_event_time().is_some_and(|n| n <= t) {
                b.advance_to(t);
            }
        }
    }

    fn next_any_event(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = self.net.next_timer_at();
        for b in &self.boxes {
            if let Some(n) = b.next_event_time() {
                t = Some(t.map_or(n, |x: SimTime| x.min(n)));
            }
        }
        t
    }

    fn on_client_arrival(&mut self, now: SimTime, spec: QuerySpec) {
        let topo = self.cfg.topology;
        let tla = self.rr_tla % topo.tlas;
        self.rr_tla += 1;
        let row = self.rr_row % topo.rows;
        self.rr_row += 1;
        let mla_col = self.rr_mla[row as usize] % topo.columns;
        self.rr_mla[row as usize] += 1;

        let req = self.requests.len() as u64;
        self.requests.push(RequestState {
            tla,
            tla_arrival: now,
            mla_arrival: SimTime::ZERO,
            row,
            mla_col,
            pending_cols: topo.columns,
            degraded: false,
            done: false,
            measured: now >= SimTime::ZERO + self.cfg.warmup,
        });
        // One use at the MLA plus one per remote column.
        self.specs.insert(req, (spec, topo.columns));
        self.net.send(
            now + self.cfg.tla_cost,
            topo.tla_node(tla),
            topo.index_node(row, mla_col),
            1 << 10,
            TrafficClass::High,
            msg_token(1, req, 0),
        );
    }

    fn take_spec(&mut self, req: u64) -> QuerySpec {
        let entry = self.specs.get_mut(&req).expect("spec recorded");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.specs.remove(&req).expect("present").0
        } else {
            entry.0.clone()
        }
    }

    fn on_delivery(&mut self, now: SimTime, to: NodeId, token: u64) {
        let (kind, req, aux) = parse_token(token);
        let topo = self.cfg.topology;
        match kind {
            // TLA → MLA: fan out to every column of the row.
            1 => {
                let (row, _) = topo.index_position(to).expect("MLA is an index machine");
                self.requests[req as usize].mla_arrival = now;
                for col in 0..topo.columns {
                    let node = topo.index_node(row, col);
                    if node == to {
                        let spec = self.take_spec(req);
                        let flat = topo.index_flat(row, col);
                        let qidx = self.boxes[flat].inject_query(now, spec);
                        self.qmap[flat].insert(qidx, req);
                        self.drain_box(flat, now);
                    } else {
                        self.net.send(
                            now,
                            to,
                            node,
                            512,
                            TrafficClass::High,
                            msg_token(2, req, col as u64),
                        );
                    }
                }
            }
            // MLA → column: process the query locally.
            2 => {
                let spec = self.take_spec(req);
                let (row, col) = topo.index_position(to).expect("column is an index machine");
                let flat = topo.index_flat(row, col);
                let qidx = self.boxes[flat].inject_query(now, spec);
                self.qmap[flat].insert(qidx, req);
                self.drain_box(flat, now);
            }
            // Column → MLA: one shard response.
            3 => {
                let dropped = aux & DROP_FLAG != 0;
                let (pending, row, mla_col) = {
                    let r = &mut self.requests[req as usize];
                    if dropped {
                        r.degraded = true;
                    }
                    r.pending_cols = r.pending_cols.saturating_sub(1);
                    (r.pending_cols, r.row, r.mla_col)
                };
                if pending == 0 && !self.requests[req as usize].done {
                    let cost = SimDuration::from_micros_f64(self.agg_dist.sample(&mut self.rng));
                    let flat = topo.index_flat(row, mla_col);
                    self.boxes[flat].spawn_primary_aux(now, cost, req);
                    self.drain_box(flat, now);
                }
            }
            // MLA → TLA: the response is ready after the TLA's own cost.
            4 => {
                let done_at = now + self.cfg.tla_cost;
                let r = &mut self.requests[req as usize];
                r.done = true;
                self.completed += 1;
                if r.degraded {
                    self.degraded += 1;
                }
                if r.measured {
                    self.tla_lat.record(done_at.since(r.tla_arrival));
                }
            }
            _ => unreachable!("unknown message kind {kind}"),
        }
    }

    /// Drains one box's events and routes them.
    fn drain_box(&mut self, flat: usize, now: SimTime) {
        let topo = self.cfg.topology;
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.boxes[flat].drain_events_into(&mut events);
        for ev in events.drain(..) {
            match ev {
                BoxEvent::QueryDone(out) => {
                    let Some(req) = self.qmap[flat].remove(&out.qidx) else {
                        continue;
                    };
                    let (measured, row, mla_col) = {
                        let r = &self.requests[req as usize];
                        (r.measured, r.row, r.mla_col)
                    };
                    if measured {
                        if out.dropped {
                            self.local_lat.record_dropped();
                        } else {
                            self.local_lat.record(out.latency);
                        }
                    }
                    let mla = topo.index_node(row, mla_col);
                    let from = NodeId(flat as u32);
                    let aux = if out.dropped { DROP_FLAG } else { 0 };
                    self.net.send(
                        now,
                        from,
                        mla,
                        2 << 10,
                        TrafficClass::High,
                        msg_token(3, req, aux),
                    );
                }
                BoxEvent::AuxDone(req) => {
                    let (measured, mla_arrival, row, mla_col, tla) = {
                        let r = &self.requests[req as usize];
                        (r.measured, r.mla_arrival, r.row, r.mla_col, r.tla)
                    };
                    if measured {
                        self.mla_lat.record(now.since(mla_arrival));
                    }
                    let mla = topo.index_node(row, mla_col);
                    self.net.send(
                        now,
                        mla,
                        topo.tla_node(tla),
                        4 << 10,
                        TrafficClass::High,
                        msg_token(4, req, 0),
                    );
                }
            }
        }
        self.scratch_events = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(secondary: SecondaryKind, seed: u64) -> ClusterConfig {
        ClusterConfig {
            topology: Topology::small(),
            qps_total: 600.0,
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(600),
            ..ClusterConfig::paper_cluster(secondary, seed)
        }
    }

    #[test]
    fn small_cluster_completes_requests() {
        let report = ClusterSim::new(small_config(SecondaryKind::none(), 3)).run();
        assert!(report.completed > 300, "completed {}", report.completed);
        assert_eq!(report.degraded, 0, "no drops in an idle cluster");
        // Layering: local <= MLA <= TLA on averages.
        assert!(report.mla.avg >= report.local.avg);
        assert!(report.tla.avg >= report.mla.avg);
        assert!(
            report.tla.p99 < SimDuration::from_millis(60),
            "tla p99 {}",
            report.tla.p99
        );
    }

    #[test]
    fn blind_isolation_holds_in_cluster() {
        let base = ClusterSim::new(small_config(SecondaryKind::none(), 5)).run();
        let colo = ClusterSim::new(small_config(
            SecondaryKind {
                cpu_bully: Some(workloads::BullyIntensity::High),
                disk_bully: None,
                hdfs: true,
            },
            5,
        ))
        .run();
        let degr = colo.tla.p99.saturating_sub(base.tla.p99);
        assert!(
            degr < SimDuration::from_millis(4),
            "cluster TLA p99 degradation {degr} (colo {} vs base {})",
            colo.tla.p99,
            base.tla.p99
        );
        assert!(colo.mean_utilization > base.mean_utilization + 0.2);
    }
}
