//! IndexServe cluster simulation (Figs 3, 9, 10).
//!
//! Reproduces the 75-machine production setup of §5.3:
//!
//! - the index is split into **22 columns** replicated across **2 rows** —
//!   44 index-serving machines, each holding one partition;
//! - **31 separate TLA machines** accept client queries and round-robin
//!   them across the two rows;
//! - for each request the TLA picks an index machine of the chosen row to
//!   act as **MLA**; the MLA queries all 22 columns of its row (including
//!   itself), aggregates, and answers the TLA;
//! - every index machine also runs an HDFS client, and PerfIso enforces the
//!   §5.3 static disk limits (replication 20 MB/s, clients 60 MB/s).
//!
//! Latency is measured at all three layers — local IndexServe, MLA, TLA —
//! exactly like Fig 9. The [`fleet`] module scales the methodology to the
//! 650-machine production experiment of Fig 10 by per-minute steady-state
//! sampling.

pub mod clustersim;
pub mod fleet;
mod pool;
pub mod report;
pub mod speculate;
pub mod topology;

pub use clustersim::{ClusterConfig, ClusterSim, DEFAULT_MIN_PAR_BOXES};
pub use fleet::{FleetConfig, FleetReport};
pub use report::{BoxFaults, ClusterReport, LayerStats};
pub use speculate::{SpeculationConfig, SpeculationStats};
pub use topology::{BoxShape, Topology};
