//! A persistent worker pool for the cluster's parallel box advances.
//!
//! The Fig 9 main loop advances many independent [`BoxSim`]s to the same
//! instant whenever controller poll ticks line up across machines. Doing
//! that with a fresh `thread::scope` per qualifying step pays thread
//! spawn/join latency thousands of times per run; this pool spawns the
//! workers once and hands them one [`Job`] per step instead.
//!
//! Workers claim fixed-size chunks of the box array through a shared
//! atomic cursor, so load balances freely while every box is still
//! advanced exactly once. Boxes never observe each other between routed
//! deliveries, so the result is bit-identical to a serial advance
//! regardless of which worker processes which chunk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use indexserve::BoxSim;
use simcore::SimTime;

/// One advance request: a raw view of the box array plus the target time.
#[derive(Clone, Copy)]
struct Job {
    boxes: *mut BoxSim,
    len: usize,
    chunk: usize,
    target: SimTime,
}

// SAFETY: a `Job` is only live while `WorkerPool::advance_due` blocks the
// owning thread, and workers touch pairwise-disjoint chunks (claimed via
// the shared atomic cursor), so the aliasing rules hold.
unsafe impl Send for Job {}

// The manual Send impl above erases the compiler's `BoxSim: Send` check;
// reinstate it so a future non-Send field inside BoxSim becomes a compile
// error instead of silent undefined behaviour.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BoxSim>()
};

/// The persistent pool. Dropping it shuts the workers down.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    /// Per-job completion signals; `true` means that worker panicked.
    done_rx: Receiver<bool>,
    cursor: Arc<AtomicUsize>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 2 is useful; 1 still works) pool threads.
    pub(crate) fn new(workers: usize) -> Self {
        let cursor = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel::<bool>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let cursor = Arc::clone(&cursor);
            let done = done_tx.clone();
            senders.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(&rx, &cursor, &done)));
        }
        WorkerPool {
            senders,
            done_rx,
            cursor,
            handles,
        }
    }

    /// Advances every box with work due at or before `target`, in
    /// parallel, and returns once all of them are quiescent. Blocks the
    /// calling thread for the whole advance, which is what makes the raw
    /// pointer hand-off sound.
    ///
    /// # Panics
    ///
    /// Re-raises (as a fresh panic) any panic that occurred inside a
    /// worker, matching the fail-fast behaviour of a scoped-thread join.
    pub(crate) fn advance_due(&mut self, boxes: &mut [BoxSim], target: SimTime) {
        if boxes.is_empty() {
            return;
        }
        self.cursor.store(0, Ordering::Relaxed);
        let job = Job {
            boxes: boxes.as_mut_ptr(),
            len: boxes.len(),
            chunk: boxes.len().div_ceil(self.senders.len()),
            target,
        };
        for tx in &self.senders {
            tx.send(job).expect("pool worker exited early");
        }
        let mut worker_panicked = false;
        for _ in 0..self.senders.len() {
            worker_panicked |= self.done_rx.recv().expect("pool worker exited early");
        }
        assert!(
            !worker_panicked,
            "cluster pool worker panicked during a box advance"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One pool thread: claim chunks, advance due boxes, signal completion.
///
/// A panic while advancing (a simulation invariant violation) is caught
/// so the done signal still reaches the submitter — which then re-raises
/// instead of deadlocking on a signal that would never come. The boxes
/// are never touched again after a panic: the submitter aborts the run.
fn worker_loop(rx: &Receiver<Job>, cursor: &AtomicUsize, done: &Sender<bool>) {
    while let Ok(job) = rx.recv() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let start = cursor.fetch_add(1, Ordering::Relaxed) * job.chunk;
            if start >= job.len {
                break;
            }
            let end = (start + job.chunk).min(job.len);
            // SAFETY: `start..end` ranges from distinct cursor values are
            // disjoint, and the submitting thread blocks in `advance_due`
            // until every worker has signalled `done`, so no other code
            // aliases these boxes while we hold the slice.
            let boxes =
                unsafe { std::slice::from_raw_parts_mut(job.boxes.add(start), end - start) };
            for b in boxes {
                if b.next_event_time().is_some_and(|n| n <= job.target) {
                    b.advance_to(job.target);
                }
            }
        }));
        if done.send(result.is_err()).is_err() {
            return; // Pool dropped mid-job: nothing left to report to.
        }
    }
}
