//! A persistent worker pool for the cluster's parallel box advances.
//!
//! The Fig 9 main loop advances many independent [`BoxSim`]s to the same
//! instant whenever controller poll ticks line up across machines. Doing
//! that with a fresh `thread::scope` per qualifying step pays thread
//! spawn/join latency thousands of times per run; this pool spawns the
//! workers once and hands them one [`Job`] per step instead.
//!
//! Workers claim fixed-size chunks of the box array through a shared
//! atomic cursor, so load balances freely while every box is still
//! advanced exactly once. Boxes never observe each other between routed
//! deliveries, so the result is bit-identical to a serial advance
//! regardless of which worker processes which chunk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use indexserve::BoxSim;
use simcore::SimTime;

use crate::speculate::SpecState;

/// What a worker does to one due box (injectable so tests can exercise
/// the pool's panic path without corrupting a real simulation).
type AdvanceFn = fn(&mut BoxSim, SimTime);

/// The production advance: catch the box up to the target instant.
fn advance_box(b: &mut BoxSim, target: SimTime) {
    b.advance_to(target);
}

/// One advance request: a raw view of the box array plus the target time.
#[derive(Clone, Copy)]
struct AdvanceJob {
    boxes: *mut BoxSim,
    len: usize,
    chunk: usize,
    target: SimTime,
    advance: AdvanceFn,
}

/// One speculation request: run-ahead sessions for the candidate boxes
/// named by `idx`, writing into the parallel `specs` array.
#[derive(Clone, Copy)]
struct SpecJob {
    boxes: *mut BoxSim,
    specs: *mut SpecState,
    idx: *const usize,
    n_idx: usize,
    chunk: usize,
    horizon: SimTime,
    stride: u32,
}

/// What the submitter hands every worker for one step.
#[derive(Clone, Copy)]
enum Job {
    Advance(AdvanceJob),
    Speculate(SpecJob),
}

// SAFETY: a `Job` is only live while the submitting `WorkerPool` method
// blocks the owning thread, and workers touch pairwise-disjoint chunks
// (claimed via the shared atomic cursor; speculation candidate indices
// are distinct by construction), so the aliasing rules hold.
unsafe impl Send for Job {}

// The manual Send impl above erases the compiler's Send checks on the
// pointed-to data; reinstate them so a future non-Send field inside
// BoxSim or a box snapshot becomes a compile error instead of silent
// undefined behaviour.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BoxSim>();
    assert_send::<SpecState>()
};

/// The persistent pool. Dropping it shuts the workers down.
pub(crate) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    /// Per-job completion signals; `true` means that worker panicked.
    done_rx: Receiver<bool>,
    cursor: Arc<AtomicUsize>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 2 is useful; 1 still works) pool threads.
    pub(crate) fn new(workers: usize) -> Self {
        let cursor = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel::<bool>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let cursor = Arc::clone(&cursor);
            let done = done_tx.clone();
            senders.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(&rx, &cursor, &done)));
        }
        WorkerPool {
            senders,
            done_rx,
            cursor,
            handles,
        }
    }

    /// Advances every box with work due at or before `target`, in
    /// parallel, and returns once all of them are quiescent. Blocks the
    /// calling thread for the whole advance, which is what makes the raw
    /// pointer hand-off sound.
    ///
    /// # Panics
    ///
    /// Re-raises (as a fresh panic) any panic that occurred inside a
    /// worker, matching the fail-fast behaviour of a scoped-thread join.
    pub(crate) fn advance_due(&mut self, boxes: &mut [BoxSim], target: SimTime) {
        self.advance_due_with(boxes, target, advance_box);
    }

    /// [`WorkerPool::advance_due`] with an injectable per-box advance;
    /// tests use this to drive the panic path deterministically.
    fn advance_due_with(&mut self, boxes: &mut [BoxSim], target: SimTime, advance: AdvanceFn) {
        if boxes.is_empty() {
            return;
        }
        self.submit(Job::Advance(AdvanceJob {
            boxes: boxes.as_mut_ptr(),
            len: boxes.len(),
            chunk: boxes.len().div_ceil(self.senders.len()),
            target,
            advance,
        }));
    }

    /// Starts run-ahead sessions for the candidate boxes named by `idx`,
    /// in parallel; `specs` runs parallel to `boxes`. Blocks until every
    /// candidate is done, which is what makes the pointer hand-off sound.
    ///
    /// # Panics
    ///
    /// Re-raises any worker panic, like [`WorkerPool::advance_due`].
    pub(crate) fn speculate_batch(
        &mut self,
        boxes: &mut [BoxSim],
        specs: &mut [SpecState],
        idx: &[usize],
        horizon: SimTime,
        stride: u32,
    ) {
        if idx.is_empty() {
            return;
        }
        debug_assert_eq!(boxes.len(), specs.len());
        debug_assert!(idx.iter().all(|&i| i < boxes.len()));
        self.submit(Job::Speculate(SpecJob {
            boxes: boxes.as_mut_ptr(),
            specs: specs.as_mut_ptr(),
            idx: idx.as_ptr(),
            n_idx: idx.len(),
            chunk: idx.len().div_ceil(self.senders.len()),
            horizon,
            stride,
        }));
    }

    /// Hands `job` to every worker and blocks until all signal done.
    fn submit(&mut self, job: Job) {
        self.cursor.store(0, Ordering::Relaxed);
        for tx in &self.senders {
            tx.send(job).expect("pool worker exited early");
        }
        let mut worker_panicked = false;
        for _ in 0..self.senders.len() {
            worker_panicked |= self.done_rx.recv().expect("pool worker exited early");
        }
        assert!(
            !worker_panicked,
            "cluster pool worker panicked during a box advance"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One pool thread: claim chunks, advance due boxes, signal completion.
///
/// A panic while advancing (a simulation invariant violation) is caught
/// so the done signal still reaches the submitter — which then re-raises
/// instead of deadlocking on a signal that would never come. The boxes
/// are never touched again after a panic: the submitter aborts the run.
fn worker_loop(rx: &Receiver<Job>, cursor: &AtomicUsize, done: &Sender<bool>) {
    while let Ok(job) = rx.recv() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job {
            Job::Advance(j) => run_advance(&j, cursor),
            Job::Speculate(j) => run_speculate(&j, cursor),
        }));
        if done.send(result.is_err()).is_err() {
            return; // Pool dropped mid-job: nothing left to report to.
        }
    }
}

fn run_advance(job: &AdvanceJob, cursor: &AtomicUsize) {
    loop {
        let start = cursor.fetch_add(1, Ordering::Relaxed) * job.chunk;
        if start >= job.len {
            break;
        }
        let end = (start + job.chunk).min(job.len);
        // SAFETY: `start..end` ranges from distinct cursor values are
        // disjoint, and the submitting thread blocks in `submit` until
        // every worker has signalled `done`, so no other code aliases
        // these boxes while we hold the slice.
        let boxes = unsafe { std::slice::from_raw_parts_mut(job.boxes.add(start), end - start) };
        for b in boxes {
            if b.next_event_time().is_some_and(|n| n <= job.target) {
                (job.advance)(b, job.target);
            }
        }
    }
}

fn run_speculate(job: &SpecJob, cursor: &AtomicUsize) {
    // SAFETY: the index list is read-only and outlives the blocked submit.
    let idx = unsafe { std::slice::from_raw_parts(job.idx, job.n_idx) };
    loop {
        let start = cursor.fetch_add(1, Ordering::Relaxed) * job.chunk;
        if start >= job.n_idx {
            break;
        }
        let end = (start + job.chunk).min(job.n_idx);
        for &i in &idx[start..end] {
            // SAFETY: candidate indices are distinct, so the box/spec
            // pairs touched by different chunks never alias, and the
            // submitting thread blocks in `submit` until every worker
            // has signalled `done`.
            let (b, s) = unsafe { (&mut *job.boxes.add(i), &mut *job.specs.add(i)) };
            crate::speculate::speculate_box(b, s, job.horizon, job.stride);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    use indexserve::{BoxConfig, SecondaryKind};
    use perfiso::PerfIsoConfig;

    use super::*;

    /// Boxes with a controller installed so poll timers guarantee every
    /// box has work due and workers actually run the advance function.
    fn boxes(n: usize) -> Vec<BoxSim> {
        (0..n)
            .map(|i| {
                BoxSim::new(BoxConfig::paper_box(
                    SecondaryKind::none(),
                    Some(PerfIsoConfig::default()),
                    i as u64,
                ))
            })
            .collect()
    }

    static ADVANCED: AtomicUsize = AtomicUsize::new(0);

    fn counting_advance(b: &mut BoxSim, target: SimTime) {
        ADVANCED.fetch_add(1, Ordering::Relaxed);
        b.advance_to(target);
    }

    fn panicking_advance(_b: &mut BoxSim, _target: SimTime) {
        panic!("injected box-advance failure");
    }

    /// The contract the Fig 9 main loop depends on: a panic inside a
    /// worker must re-raise on the submitting thread — not deadlock the
    /// `done` rendezvous, and not leave workers hung — and the pool must
    /// still drop cleanly (joining every worker) afterwards.
    #[test]
    fn worker_panic_re_raises_on_caller_without_deadlock() {
        let mut pool = WorkerPool::new(3);
        let mut bs = boxes(4);
        let target = SimTime::from_millis(5);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.advance_due_with(&mut bs, target, panicking_advance);
        }));
        let payload = result.expect_err("worker panic must re-raise on the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("pool worker panicked"),
            "unexpected panic payload {msg:?}"
        );

        // No hung workers: the pool accepts and completes a fresh job.
        // (The panicking advance never touched a box, so they are intact.)
        ADVANCED.store(0, Ordering::Relaxed);
        pool.advance_due(&mut bs, SimTime::from_millis(1));
        pool.advance_due_with(&mut bs, target, counting_advance);
        assert_eq!(
            ADVANCED.load(Ordering::Relaxed),
            4,
            "every due box must be advanced exactly once after recovery"
        );
        for b in &mut bs {
            assert!(
                b.next_event_time().is_some_and(|n| n > target),
                "boxes must be quiescent up to the target"
            );
        }
        drop(pool); // must join, not hang
    }

    /// Dropping a pool mid-life joins every worker even if no job ran.
    #[test]
    fn idle_pool_drops_cleanly() {
        let pool = WorkerPool::new(2);
        let start = std::time::Instant::now();
        drop(pool);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not hang on idle workers"
        );
    }
}
