//! Diagnostic probe for the saturated no-isolation cells: prints the
//! service-level counters that the calibration table hides.
//!
//! The experiment is described by a [`ScenarioSpec`]; the probe obtains
//! the simulator and its workload replay from the spec and steps them
//! manually to report progress every simulated 250 ms.

use scenarios::spec::ScenarioSpec;
use scenarios::Policy;
use simcore::{SimDuration, SimTime};
use workloads::BullyIntensity;

fn main() {
    let qps: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000.0);
    let spec = ScenarioSpec::builder("probe")
        .single_box(qps)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::NoIsolation)
        .custom_scale(0, 2_000)
        .seed(1)
        .build()
        .expect("valid probe spec");
    let mut client = spec.open_loop_client(spec.seed).expect("single-box spec");
    let mut sim = spec.box_sim(spec.seed).expect("single-box spec");
    let end = SimTime::ZERO + SimDuration::from_millis(2_000);
    let mut completed = 0u64;
    let mut dropped = 0u64;
    let mut next_report = SimTime::from_millis(250);
    let mut events = Vec::with_capacity(64);
    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        sim.drain_events_into(&mut events);
        for ev in events.drain(..) {
            if let indexserve::BoxEvent::QueryDone(o) = ev {
                if o.dropped {
                    dropped += 1;
                } else {
                    completed += 1;
                }
            }
        }
        if at >= next_report {
            next_report += SimDuration::from_millis(250);
            let s = sim.service();
            let bd = sim.breakdown();
            println!(
                "t={:>6} in_flight={:>4} adm_q={:>5} shed={:>6} done={:>6} drop={:>6} \
                 prim={:>5.1}% sec={:>5.1}% idle={:>5.1}% spawned={}",
                format!("{}", at),
                s.in_flight(),
                s.admission_queue_len(),
                s.shed_admissions,
                completed,
                dropped,
                bd.fraction(telemetry::TenantClass::Primary) * 100.0,
                bd.fraction(telemetry::TenantClass::Secondary) * 100.0,
                bd.idle_fraction() * 100.0,
                s.workers_spawned,
            );
        }
    }
}
