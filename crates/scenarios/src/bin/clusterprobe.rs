//! Diagnostic: step the small-cluster baseline manually and report where
//! virtual time stops advancing. The experiment is the registry's
//! `cluster-small` scenario with its secondary stripped.

use scenarios::spec;

fn main() {
    let mut s = spec::named("cluster-small").expect("registered scenario");
    s.secondary = indexserve::SecondaryKind::none();
    s.validate().expect("still a valid spec");
    eprintln!("running {} ({})", s.name, s.target.describe());
    let report = s
        .cluster_sim(3, 1)
        .expect("cluster scenario")
        .run_traced(50_000);
    eprintln!(
        "completed={} degraded={}",
        report.completed, report.degraded
    );
}
