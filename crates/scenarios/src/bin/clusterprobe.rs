//! Diagnostic: step the small-cluster baseline manually and report where
//! virtual time stops advancing.

use cluster::{ClusterConfig, ClusterSim, Topology};
use indexserve::SecondaryKind;
use simcore::SimDuration;

fn main() {
    let cfg = ClusterConfig {
        topology: Topology::small(),
        qps_total: 600.0,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
        ..ClusterConfig::paper_cluster(SecondaryKind::none(), 3)
    };
    eprintln!("running small cluster: {:?}", cfg.topology);
    let report = ClusterSim::new(cfg).run_traced(50_000);
    eprintln!(
        "completed={} degraded={}",
        report.completed, report.degraded
    );
}
