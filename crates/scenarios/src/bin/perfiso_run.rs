//! `perfiso-run` — the unified experiment CLI.
//!
//! ```text
//! perfiso-run list
//! perfiso-run show <name>
//! perfiso-run run <name|spec.json> [--sweep] [--seeds N] [--threads T] [--out report.json]
//! ```
//!
//! `run` resolves the scenario from the registry (or loads a
//! [`scenarios::spec::ScenarioSpec`] JSON file), fans the seed
//! repetitions out across `--threads` workers (`0` = all cores; parallel
//! reports are bit-identical to `--threads 1`), prints a per-seed table
//! plus cross-seed statistics, and optionally writes the full JSON
//! [`scenarios::spec::Report`] to `--out`.
//!
//! With `--sweep`, the spec's [`scenarios::spec::SweepSpec`] grid expands
//! into one cell per knob combination; every `(cell, seed)` job fans out
//! across the same worker pool, a cross-cell summary table is printed,
//! and `--out` receives the full [`scenarios::spec::SweepReport`].

use std::process::ExitCode;

use scenarios::spec::{self, Report, RunOptions, ScenarioSpec, SeedReport, SweepReport};
use telemetry::table::{ms, pct, Table};

const USAGE: &str = "usage:
  perfiso-run list
  perfiso-run show <name>
  perfiso-run run <name|spec.json> [--sweep] [--seeds N] [--threads T] [--out report.json]

  --sweep       expand the spec's parameter sweep and run every grid cell
  --seeds N     override the spec's repetition count (seeds seed..seed+N)
  --threads T   seed-sweep workers; 0 = all cores (default), 1 = serial
  --out PATH    write the full JSON report to PATH";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => match args.get(1) {
            Some(name) => cmd_show(name),
            None => Err("`show` needs a scenario name".into()),
        },
        Some("run") => cmd_run(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    let mut t = Table::new(&[
        "name",
        "target",
        "workload",
        "policy",
        "sweep",
        "seeds",
        "description",
    ]);
    for s in spec::registry() {
        let sweep = match &s.sweep {
            Some(sw) => format!("{} cells", sw.cell_count()),
            None => "-".to_string(),
        };
        t.row_owned(vec![
            s.name.clone(),
            s.target.describe(),
            s.workload.class_label().to_string(),
            s.policy.label(),
            sweep,
            format!("{}", s.seeds),
            s.description.clone(),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_show(name: &str) -> Result<(), String> {
    let s = spec::named(name).map_err(|e| e.to_string())?;
    println!("{}", s.to_json());
    if let Some(g) = s.workload.as_graph() {
        println!("\nservice graph ({}):", g.shape_summary());
        let mut t = Table::new(&["stage", "fan-out", "compute (us)", "sigma", "memory (mb)"]);
        for st in &g.stages {
            t.row_owned(vec![
                st.name.clone(),
                format!("{}", st.fan_out),
                format!("{:.0}", st.compute_us),
                format!("{:.2}", st.sigma),
                format!("{}", st.memory_mb),
            ]);
        }
        print!("{}", t.render());
        for e in &g.edges {
            println!(
                "  {} -> {} ({} B, +{} us)",
                e.from, e.to, e.bytes, e.latency_us
            );
        }
        println!("  deadline: {} ms", g.timeout_ms);
    }
    if let spec::TargetSpec::MultiBox { services } = &s.target {
        println!("\nhosted services ({}):", services.len());
        let mut t = Table::new(&["service", "qps", "working set (mb)"]);
        for svc in services {
            t.row_owned(vec![
                svc.name.clone(),
                format!("{:.0}", svc.qps),
                format!("{}", svc.working_set_mb),
            ]);
        }
        print!("{}", t.render());
    }
    if !s.fault.is_empty() {
        let r = &s.fault.restart;
        println!(
            "\nfault timeline ({} events; restart backoff {} ms x{}, give up after {} failures):",
            s.fault.events.len(),
            r.base_backoff_ms,
            r.multiplier,
            r.max_failures
        );
        for ev in &s.fault.events {
            println!("  {}", ev.describe());
        }
    }
    println!(
        "\ntelemetry: {}",
        match s.telemetry {
            spec::TelemetrySpec::Exact => "exact (every sample kept)".to_string(),
            spec::TelemetrySpec::Sketch => format!(
                "sketch (bounded memory, ±{:.1}% guaranteed)",
                telemetry::Sketch::RELATIVE_ERROR * 100.0
            ),
        }
    );
    if !s.resilience.is_disabled() {
        println!("\nresilience policy:");
        for line in s.resilience.describe() {
            println!("  {line}");
        }
    }
    if s.sweep.is_some() {
        let cells = s.expand_sweep().map_err(|e| e.to_string())?;
        println!("\nsweep grid ({} cells, run with --sweep):", cells.len());
        let mut t = Table::new(&["cell", "knobs"]);
        for (i, cell) in cells.iter().enumerate() {
            t.row_owned(vec![format!("{i}"), cell.label.clone()]);
        }
        print!("{}", t.render());
    }
    Ok(())
}

/// Resolves `run`'s scenario operand: a registry name, or a path to a
/// spec JSON file (anything containing a path separator or ending in
/// `.json`).
fn resolve_spec(operand: &str) -> Result<ScenarioSpec, String> {
    if operand.ends_with(".json") || operand.contains('/') {
        let text = std::fs::read_to_string(operand)
            .map_err(|e| format!("cannot read spec file {operand}: {e}"))?;
        ScenarioSpec::from_json(&text).map_err(|e| e.to_string())
    } else {
        spec::named(operand).map_err(|e| e.to_string())
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let Some(operand) = args.first() else {
        return Err(format!("`run` needs a scenario name or spec file\n{USAGE}"));
    };
    let mut opts = RunOptions {
        seeds: None,
        threads: 0,
    };
    let mut out: Option<String> = None;
    let mut sweep = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--sweep" => sweep = true,
            "--seeds" => {
                let v = value("--seeds")?;
                let n: u32 = v.parse().map_err(|_| format!("invalid --seeds {v:?}"))?;
                opts.seeds = Some(n);
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }

    let spec = resolve_spec(operand)?;
    if sweep {
        return run_sweep_cmd(&spec, &opts, out.as_deref());
    }
    if spec.sweep.is_some() {
        println!(
            "note: {} declares a {}-cell sweep; running the base point only \
             (pass --sweep for the grid)",
            spec.name,
            spec.sweep.as_ref().map_or(0, |s| s.cell_count()),
        );
    }
    println!(
        "running {} ({}) under {} ...",
        spec.name,
        spec.target.describe(),
        spec.policy.label()
    );
    let started = std::time::Instant::now();
    let report = spec::run_spec(&spec, &opts).map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();

    print_report(&report);
    println!(
        "\n{} seed(s) in {wall:.2}s wall ({} sweep)",
        report.seeds.len(),
        if opts.threads == 1 {
            "serial"
        } else {
            "parallel"
        },
    );
    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_sweep_cmd(spec: &ScenarioSpec, opts: &RunOptions, out: Option<&str>) -> Result<(), String> {
    println!(
        "sweeping {} ({}) under {}: {} cells x {} seed(s) ...",
        spec.name,
        spec.target.describe(),
        spec.policy.label(),
        // run_sweep validates and expands the grid; only the size is
        // needed up front.
        spec.sweep.as_ref().map_or(0, |s| s.cell_count()),
        spec.seed_list(opts.seeds).len(),
    );
    let started = std::time::Instant::now();
    let sweep = spec::run_sweep(spec, opts).map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();

    print_sweep(&sweep);
    println!(
        "\n{} cells x {} seed(s) in {wall:.2}s wall ({} sweep)",
        sweep.cells.len(),
        sweep.seeds.len(),
        if opts.threads == 1 {
            "serial"
        } else {
            "parallel"
        },
    );
    if let Some(path) = out {
        std::fs::write(path, sweep.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn print_sweep(sweep: &SweepReport) {
    let fleet = matches!(
        sweep.cells.first().and_then(|c| c.report.runs.first()),
        Some(SeedReport::Fleet(_))
    );
    let secondary_header = if fleet {
        "secondary (mb/min)"
    } else {
        "secondary (cpu-s)"
    };
    let mut t = Table::new(&["cell", "p99 (ms)", "utilization", "drops", secondary_header]);
    for row in &sweep.table {
        t.row_owned(vec![
            row.label.clone(),
            format!("{:.2} ± {:.2}", row.p99_ms_mean, row.p99_ms_ci95),
            pct(row.utilization_mean),
            pct(row.drop_ratio_mean),
            format!("{:.1}", row.secondary_mean),
        ]);
    }
    print!("{}", t.render());
}

/// Resilience counters as one summary line.
fn resilience_line(rs: &telemetry::ResilienceStats) -> String {
    format!(
        "sheds {}  retries {}  hedges {} ({} won / {} lost)  breaker opens {} \
         (fast-fails {})  deadline cancels {}",
        rs.sheds,
        rs.retries,
        rs.hedges_launched,
        rs.hedges_won,
        rs.hedges_lost,
        rs.breaker_opens,
        rs.breaker_fast_fails,
        rs.deadline_cancels,
    )
}

/// One executed fault record as a timeline line.
fn fault_line(f: &indexserve::FaultRecord) -> String {
    let mut s = format!("t={:.0}ms {} ({})", f.fired_at_ms, f.kind, f.service);
    if f.downtime_ms > 0.0 {
        s += &format!(" down {:.0}ms", f.downtime_ms);
    }
    if f.recovery_polls > 0 {
        s += &format!(", reconverged in {} polls", f.recovery_polls);
    }
    if f.gave_up {
        s += ", autopilot gave up";
    }
    if f.rolled_back {
        s += ", rolled back";
    }
    s
}

fn print_report(report: &Report) {
    let mut t = Table::new(&["seed", "p99 (ms)", "utilization", "drops", "secondary"]);
    for (seed, run) in report.seeds.iter().zip(report.runs.iter()) {
        let secondary = match run {
            SeedReport::Fleet(_) => format!("{:.0} mb/min", run.secondary_progress()),
            _ => format!("{:.1} cpu-s", run.secondary_progress()),
        };
        t.row_owned(vec![
            format!("{seed}"),
            ms(run.p99()),
            pct(run.utilization()),
            pct(run.drop_ratio()),
            secondary,
        ]);
    }
    print!("{}", t.render());
    // Per-service breakdowns (multi-service boxes only; classic runs
    // carry no service rows).
    if report.box_reports().iter().any(|r| !r.services.is_empty()) {
        let mut t = Table::new(&[
            "seed",
            "service",
            "qps",
            "p50 (ms)",
            "p99 (ms)",
            "completed",
            "dropped",
            "cpu (s)",
        ]);
        for (seed, run) in report.seeds.iter().zip(report.runs.iter()) {
            let Some(r) = run.as_single_box() else {
                continue;
            };
            for svc in &r.services {
                t.row_owned(vec![
                    format!("{seed}"),
                    svc.name.clone(),
                    format!("{:.0}", svc.qps),
                    ms(svc.latency.p50),
                    ms(svc.latency.p99),
                    format!("{}", svc.latency.count),
                    format!("{}", svc.latency.dropped),
                    format!("{:.2}", svc.cpu_time.as_secs_f64()),
                ]);
            }
        }
        print!("{}", t.render());
    }
    for (seed, run) in report.seeds.iter().zip(report.runs.iter()) {
        match run {
            SeedReport::SingleBox(r) => {
                for f in &r.faults {
                    println!("seed {seed} fault: {}", fault_line(f));
                }
                if let Some(rs) = &r.resilience {
                    println!("seed {seed} resilience: {}", resilience_line(rs));
                }
            }
            SeedReport::Cluster(r) => {
                for bf in &r.faults {
                    for f in &bf.faults {
                        println!("seed {seed} box {} fault: {}", bf.box_index, fault_line(f));
                    }
                }
                if let Some(rs) = &r.resilience {
                    println!("seed {seed} resilience: {}", resilience_line(rs));
                }
            }
            SeedReport::Fleet(r) => {
                if let Some(rs) = &r.resilience {
                    println!("seed {seed} resilience: {}", resilience_line(rs));
                }
                if let Some(sk) = &r.latency_sketch {
                    println!(
                        "seed {seed} fleet sketch: p50 {} ms  p99 {} ms  max {} ms \
                         (±{:.1}% guaranteed, {} samples, {} dropped)",
                        ms(sk.p50),
                        ms(sk.p99),
                        ms(sk.max),
                        sk.relative_error * 100.0,
                        sk.count,
                        sk.dropped,
                    );
                }
            }
        }
    }
    let s = &report.summary;
    println!(
        "summary: p99 {} ms   utilization {:.1}%   drops {:.2}%",
        s.p99_ms.to_ci_string(),
        s.utilization.mean() * 100.0,
        s.drop_ratio.mean() * 100.0,
    );
}
