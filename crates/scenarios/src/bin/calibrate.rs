//! Calibration probe: prints the standalone profile and the headline
//! colocation numbers so the service model can be tuned against the paper's
//! published figures (p50 = 4 ms, p99 = 12 ms, idle 80 %/60 %).

use scenarios::{blind_isolation, cycle_cap, no_isolation, standalone, static_cores, Scale};
use telemetry::table::{ms, pct, Table};
use workloads::BullyIntensity;

fn main() {
    let scale = Scale::bench();
    let mut t = Table::new(&[
        "case", "qps", "p50", "p95", "p99", "drops", "idle", "prim", "sec", "os", "fanout",
    ]);
    let mut add = |name: &str, qps: f64, r: &indexserve::BoxReport| {
        t.row_owned(vec![
            name.to_string(),
            format!("{qps:.0}"),
            ms(r.latency.p50),
            ms(r.latency.p95),
            ms(r.latency.p99),
            pct(r.drop_ratio()),
            pct(r.breakdown.idle_fraction()),
            pct(r.breakdown.fraction(telemetry::TenantClass::Primary)),
            pct(r.breakdown.fraction(telemetry::TenantClass::Secondary)),
            pct(r.breakdown.fraction(telemetry::TenantClass::Os)),
            format!("{:.1}", r.avg_fanout),
        ]);
    };

    for qps in [2_000.0, 4_000.0] {
        let r = standalone(qps, 42, scale);
        add("standalone", qps, &r);
    }
    for qps in [2_000.0, 4_000.0] {
        let r = no_isolation(BullyIntensity::Mid, qps, 42, scale);
        add("none+mid", qps, &r);
    }
    for qps in [2_000.0, 4_000.0] {
        let r = no_isolation(BullyIntensity::High, qps, 42, scale);
        add("none+high", qps, &r);
    }
    for buffer in [4, 8] {
        for qps in [2_000.0, 4_000.0] {
            let r = blind_isolation(buffer, qps, 42, scale);
            add(&format!("blind(B={buffer})"), qps, &r);
        }
    }
    for cores in [24, 16, 8] {
        for qps in [2_000.0, 4_000.0] {
            let r = static_cores(cores, qps, 42, scale);
            add(&format!("static({cores})"), qps, &r);
        }
    }
    for pct in [0.45, 0.25, 0.05] {
        for qps in [2_000.0, 4_000.0] {
            let r = cycle_cap(pct, qps, 42, scale);
            add(&format!("cycles({}%)", (pct * 100.0) as u32), qps, &r);
        }
    }
    println!("{}", t.render());
}
