//! Calibration probe: prints the standalone profile and the headline
//! colocation numbers so the service model can be tuned against the paper's
//! published figures (p50 = 4 ms, p99 = 12 ms, idle 80 %/60 %). Every cell
//! is one [`ScenarioSpec`] over the bench scale.

use scenarios::spec::{run_spec, RunOptions, ScaleSpec, ScenarioSpec};
use scenarios::Policy;
use telemetry::table::{ms, pct, Table};
use workloads::BullyIntensity;

fn main() {
    let mut t = Table::new(&[
        "case", "qps", "p50", "p95", "p99", "drops", "idle", "prim", "sec", "os", "fanout",
    ]);
    let mut add = |name: &str, qps: f64, policy: Policy, intensity: Option<BullyIntensity>| {
        let mut b = ScenarioSpec::builder("calibrate")
            .single_box(qps)
            .policy(policy)
            .scale(ScaleSpec::Bench)
            .seed(42);
        if let Some(intensity) = intensity {
            b = b.cpu_bully(intensity);
        }
        let spec = b.build().expect("valid calibration spec");
        let report = run_spec(&spec, &RunOptions::serial()).expect("runnable spec");
        let r = report.runs[0].as_single_box().expect("single box");
        t.row_owned(vec![
            name.to_string(),
            format!("{qps:.0}"),
            ms(r.latency.p50),
            ms(r.latency.p95),
            ms(r.latency.p99),
            pct(r.drop_ratio()),
            pct(r.breakdown.idle_fraction()),
            pct(r.breakdown.fraction(telemetry::TenantClass::Primary)),
            pct(r.breakdown.fraction(telemetry::TenantClass::Secondary)),
            pct(r.breakdown.fraction(telemetry::TenantClass::Os)),
            format!("{:.1}", r.avg_fanout),
        ]);
    };

    for qps in [2_000.0, 4_000.0] {
        add("standalone", qps, Policy::Standalone, None);
    }
    for qps in [2_000.0, 4_000.0] {
        add(
            "none+mid",
            qps,
            Policy::NoIsolation,
            Some(BullyIntensity::Mid),
        );
    }
    for qps in [2_000.0, 4_000.0] {
        add(
            "none+high",
            qps,
            Policy::NoIsolation,
            Some(BullyIntensity::High),
        );
    }
    for buffer in [4, 8] {
        for qps in [2_000.0, 4_000.0] {
            add(
                &format!("blind(B={buffer})"),
                qps,
                Policy::Blind {
                    buffer_cores: buffer,
                },
                Some(BullyIntensity::High),
            );
        }
    }
    for cores in [24, 16, 8] {
        for qps in [2_000.0, 4_000.0] {
            add(
                &format!("static({cores})"),
                qps,
                Policy::StaticCores(cores),
                Some(BullyIntensity::High),
            );
        }
    }
    for pct in [0.45, 0.25, 0.05] {
        for qps in [2_000.0, 4_000.0] {
            add(
                &format!("cycles({}%)", (pct * 100.0) as u32),
                qps,
                Policy::CycleCap(pct),
                Some(BullyIntensity::High),
            );
        }
    }
    println!("{}", t.render());
}
