//! Fleet throughput benchmark: the perf gate for the simulation hot path.
//!
//! Runs the Fig 10 fleet sweep twice — serial (`threads: 1`) and parallel
//! (`threads: 0`, all cores) — asserts the reports are bit-identical, and
//! reports wall-clock, slices/second, scheduler events/second, and the
//! parallel speedup. A single-box run under a counting allocator reports
//! allocations per simulated second for the inner step loop.
//!
//! Results go to stdout as a table and to `BENCH_fleet.json` (override the
//! path with `PERFISO_BENCH_OUT`) so CI can archive the trajectory.
//! Pass `--smoke` for a seconds-scale configuration suitable as a CI gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cluster::fleet::{run_fleet, FleetConfig, FleetReport};
use indexserve::boxsim::{run_standalone, BoxConfig, RunPlan};
use indexserve::SecondaryKind;
use perfiso::PerfIsoConfig;
use serde_json::{json, Value};
use simcore::SimDuration;
use telemetry::table::Table;
use workloads::BullyIntensity;

/// Counts every heap allocation made through the global allocator.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Allocation profile of the single-box inner loop: a standalone run with
/// a colocated bully under blind isolation, 1 simulated second measured.
fn singlebox_alloc_profile(smoke: bool) -> Value {
    let measure = if smoke { 500 } else { 2_000 };
    let plan = RunPlan {
        qps: 2_000.0,
        warmup: SimDuration::from_millis(300),
        measure: SimDuration::from_millis(measure),
        trace: Default::default(),
    };
    let cfg = BoxConfig::paper_box(
        SecondaryKind::cpu(BullyIntensity::High),
        Some(PerfIsoConfig::default()),
        4242,
    );
    let sim_secs = (plan.warmup + plan.measure).as_secs_f64();
    let (allocs_before, bytes_before) = alloc_snapshot();
    let wall = Instant::now();
    let report = run_standalone(cfg, &plan);
    let wall = wall.elapsed().as_secs_f64();
    let (allocs_after, bytes_after) = alloc_snapshot();
    let allocs = allocs_after - allocs_before;
    let bytes = bytes_after - bytes_before;
    println!(
        "single-box step loop: {:.0} allocs/sim-second ({:.1} MiB/sim-second), \
         {} queries completed, wall {:.2}s",
        allocs as f64 / sim_secs,
        bytes as f64 / sim_secs / (1 << 20) as f64,
        report.latency.count,
        wall,
    );
    json!({
        "sim_seconds": sim_secs,
        "allocations": allocs,
        "allocated_bytes": bytes,
        "allocations_per_sim_second": allocs as f64 / sim_secs,
        "queries_completed": report.latency.count,
        "wall_seconds": wall
    })
}

struct FleetRun {
    wall: f64,
    report: FleetReport,
}

fn timed_fleet(cfg: &FleetConfig) -> FleetRun {
    let wall = Instant::now();
    let report = run_fleet(cfg);
    FleetRun {
        wall: wall.elapsed().as_secs_f64(),
        report,
    }
}

fn fleet_run_json(label: &str, threads: usize, run: &FleetRun) -> Value {
    let slices_per_sec = run.report.slices as f64 / run.wall;
    let events_per_sec = run.report.sim_events as f64 / run.wall;
    json!({
        "label": label,
        "threads": threads,
        "wall_seconds": run.wall,
        "slices": run.report.slices,
        "slices_per_second": slices_per_sec,
        "sim_events": run.report.sim_events,
        "events_per_second": events_per_sec,
        "mean_utilization": run.report.mean_utilization,
        "max_p99_ms": run.report.max_p99.as_millis_f64()
    })
}

/// Bit-exact comparison of the two reports; parallelism must not change a
/// single ULP anywhere.
fn assert_identical(serial: &FleetReport, parallel: &FleetReport) {
    assert_eq!(
        serial.mean_utilization.to_bits(),
        parallel.mean_utilization.to_bits()
    );
    assert_eq!(serial.max_p99, parallel.max_p99);
    assert_eq!(serial.slices, parallel.slices);
    assert_eq!(serial.sim_events, parallel.sim_events);
    for (a, b) in [
        (&serial.qps, &parallel.qps),
        (&serial.p99_ms, &parallel.p99_ms),
        (&serial.utilization_pct, &parallel.utilization_pct),
        (&serial.trainer_progress, &parallel.trainer_progress),
    ] {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let (x, y) = (a.bucket(i).unwrap(), b.bucket(i).unwrap());
            assert_eq!(x.count, y.count);
            assert_eq!(x.sum.to_bits(), y.sum.to_bits());
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let base = if smoke {
        FleetConfig {
            minutes: 8,
            sampled_machines: 2,
            slice: SimDuration::from_millis(200),
            ..Default::default()
        }
    } else {
        FleetConfig {
            minutes: 24,
            sampled_machines: 3,
            slice: SimDuration::from_millis(500),
            ..Default::default()
        }
    };

    println!(
        "fleet bench: {} minutes x {} sampled machines, {} ms slices, {} cores available{}",
        base.minutes,
        base.sampled_machines,
        base.slice.as_millis(),
        threads,
        if smoke { " [smoke]" } else { "" },
    );

    let alloc_profile = singlebox_alloc_profile(smoke);

    let serial = timed_fleet(&FleetConfig {
        threads: 1,
        ..base.clone()
    });
    let parallel = timed_fleet(&FleetConfig { threads: 0, ..base });
    assert_identical(&serial.report, &parallel.report);
    let speedup = serial.wall / parallel.wall;

    let mut t = Table::new(&["run", "threads", "wall (s)", "slices/s", "events/s"]);
    for (label, n, run) in [
        ("serial", 1usize, &serial),
        ("parallel", threads, &parallel),
    ] {
        t.row_owned(vec![
            label.to_string(),
            format!("{n}"),
            format!("{:.2}", run.wall),
            format!("{:.1}", run.report.slices as f64 / run.wall),
            format!("{:.0}", run.report.sim_events as f64 / run.wall),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nparallel speedup: {speedup:.2}x on {threads} cores \
         (reports verified bit-identical)"
    );

    let out = json!({
        "bench": "fleet",
        "smoke": smoke,
        "cores": threads,
        "config": {
            "minutes": serial.report.qps.len(),
            "slices": serial.report.slices
        },
        "singlebox_allocations": alloc_profile,
        "runs": [
            fleet_run_json("serial", 1, &serial),
            fleet_run_json("parallel", threads, &parallel)
        ],
        "speedup": speedup
    });
    let path = std::env::var("PERFISO_BENCH_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
