//! Fleet throughput benchmark: the perf gate for the simulation hot path.
//!
//! Runs the Fig 10 fleet sweep twice — serial (`--threads 1`) and parallel
//! (`--threads 0`, all cores) — asserts the reports are bit-identical, and
//! reports wall-clock, slices/second, scheduler events/second, and the
//! parallel speedup. A single-box run under a counting allocator reports
//! allocations per simulated second for the inner step loop. Both
//! experiments are described by [`ScenarioSpec`]s and executed through
//! [`scenarios::spec::run_spec`].
//!
//! Results go to stdout as a table and to `BENCH_fleet.json` (override the
//! path with `PERFISO_BENCH_OUT`) so CI can archive the trajectory.
//! Pass `--smoke` for a seconds-scale configuration suitable as a CI gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cluster::fleet::FleetReport;
use scenarios::spec::{run_spec, RunOptions, ScenarioSpec};
use scenarios::Policy;
use serde_json::{json, Value};
use telemetry::table::Table;
use workloads::BullyIntensity;

/// Counts every heap allocation made through the global allocator.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Allocation profile of one complete standalone single-box run — trace
/// generation, sim construction, and the step loop (the step loop
/// dominates at these window lengths): a colocated bully under blind
/// isolation, 2.3 simulated seconds (0.8 in smoke), warmup included in
/// the divisor.
fn singlebox_alloc_profile(smoke: bool) -> Value {
    let measure = if smoke { 500 } else { 2_000 };
    let spec = ScenarioSpec::builder("allocprofile")
        .single_box(2_000.0)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::Blind { buffer_cores: 8 })
        .custom_scale(300, measure)
        .seed(4242)
        .build()
        .expect("valid spec");
    let sim_secs = (300 + measure) as f64 / 1_000.0;
    let (allocs_before, bytes_before) = alloc_snapshot();
    let wall = Instant::now();
    let report = run_spec(&spec, &RunOptions::serial()).expect("runnable spec");
    let wall = wall.elapsed().as_secs_f64();
    let (allocs_after, bytes_after) = alloc_snapshot();
    let allocs = allocs_after - allocs_before;
    let bytes = bytes_after - bytes_before;
    let queries = report.runs[0]
        .as_single_box()
        .expect("single box")
        .latency
        .count;
    println!(
        "single-box run (incl. setup): {:.0} allocs/sim-second ({:.1} MiB/sim-second), \
         {} queries completed, wall {:.2}s",
        allocs as f64 / sim_secs,
        bytes as f64 / sim_secs / (1 << 20) as f64,
        queries,
        wall,
    );
    json!({
        "sim_seconds": sim_secs,
        "allocations": allocs,
        "allocated_bytes": bytes,
        "allocations_per_sim_second": allocs as f64 / sim_secs,
        "queries_completed": queries,
        "wall_seconds": wall
    })
}

struct FleetRun {
    wall: f64,
    report: FleetReport,
}

fn timed_fleet(spec: &ScenarioSpec, threads: usize) -> FleetRun {
    let wall = Instant::now();
    let report = run_spec(
        spec,
        &RunOptions {
            seeds: None,
            threads,
        },
    )
    .expect("runnable spec");
    FleetRun {
        wall: wall.elapsed().as_secs_f64(),
        report: report.runs[0].as_fleet().expect("fleet target").clone(),
    }
}

fn fleet_run_json(label: &str, threads: usize, run: &FleetRun) -> Value {
    let slices_per_sec = run.report.slices as f64 / run.wall;
    let events_per_sec = run.report.sim_events as f64 / run.wall;
    json!({
        "label": label,
        "threads": threads,
        "wall_seconds": run.wall,
        "slices": run.report.slices,
        "slices_per_second": slices_per_sec,
        "sim_events": run.report.sim_events,
        "events_per_second": events_per_sec,
        "mean_utilization": run.report.mean_utilization,
        "max_p99_ms": run.report.max_p99.as_millis_f64()
    })
}

/// Bit-exact comparison of the two reports; parallelism must not change a
/// single ULP anywhere.
fn assert_identical(serial: &FleetReport, parallel: &FleetReport) {
    assert!(
        serial.bits_eq(parallel),
        "parallel fleet report diverged from serial"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let spec = if smoke {
        ScenarioSpec::builder("fleetbench-smoke").fleet(8, 2, 200)
    } else {
        ScenarioSpec::builder("fleetbench").fleet(24, 3, 500)
    }
    .policy(Policy::Blind { buffer_cores: 8 })
    .seed(99)
    .build()
    .expect("valid fleet spec");

    println!(
        "fleet bench: {}, {} cores available{}",
        spec.target.describe(),
        threads,
        if smoke { " [smoke]" } else { "" },
    );

    let alloc_profile = singlebox_alloc_profile(smoke);

    let serial = timed_fleet(&spec, 1);
    let parallel = timed_fleet(&spec, 0);
    assert_identical(&serial.report, &parallel.report);
    let speedup = serial.wall / parallel.wall;

    let mut t = Table::new(&["run", "threads", "wall (s)", "slices/s", "events/s"]);
    for (label, n, run) in [
        ("serial", 1usize, &serial),
        ("parallel", threads, &parallel),
    ] {
        t.row_owned(vec![
            label.to_string(),
            format!("{n}"),
            format!("{:.2}", run.wall),
            format!("{:.1}", run.report.slices as f64 / run.wall),
            format!("{:.0}", run.report.sim_events as f64 / run.wall),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nparallel speedup: {speedup:.2}x on {threads} cores \
         (reports verified bit-identical)"
    );

    let out = json!({
        "bench": "fleet",
        "smoke": smoke,
        "cores": threads,
        "config": {
            "minutes": serial.report.qps.len(),
            "slices": serial.report.slices
        },
        "singlebox_allocations": alloc_profile,
        "runs": [
            fleet_run_json("serial", 1, &serial),
            fleet_run_json("parallel", threads, &parallel)
        ],
        "speedup": speedup
    });
    let path = std::env::var("PERFISO_BENCH_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
