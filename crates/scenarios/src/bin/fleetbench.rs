//! Fleet throughput benchmark: the perf gate for the simulation hot path.
//!
//! Runs the Fig 10 fleet sweep serially three times (keeping the
//! median-wall run, so one noisy timing cannot flap the regression check)
//! and once in parallel (`--threads 0`, all cores), asserts the reports
//! are bit-identical, and reports wall-clock, slices/second, scheduler
//! events/second, and the parallel speedup. A `fleet-production` probe
//! runs the 24-hour production-day scenario with sketch telemetry and
//! reports its events/second and peak-memory high-water. A single-box run under a counting allocator reports
//! allocations per simulated second for the inner step loop. Both
//! experiments are described by [`ScenarioSpec`]s and executed through
//! [`scenarios::spec::run_spec`].
//!
//! Results go to stdout as a table and to `BENCH_fleet.json` (override the
//! path with `PERFISO_BENCH_OUT`) so CI can archive the trajectory. When a
//! previous report exists at the output path (the committed baseline), the
//! allocs/sim-second delta against it is printed, with an
//! `ALLOC-REGRESSION WARNING` line past a 10 % regression that CI surfaces
//! as a non-gating annotation. (Throughput numbers are wall-clock-noisy on
//! shared runners, so only the deterministic allocation count is gated.)
//! Pass `--smoke` for a seconds-scale configuration suitable as a CI gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cluster::fleet::FleetReport;
use indexserve::{BoxConfig, BoxSim, SecondaryKind};
use perfiso::PerfIsoConfig;
use qtrace::{OpenLoopClient, TraceConfig, TraceGenerator};
use scenarios::spec::{run_spec, RunOptions, ScenarioSpec, TargetSpec};
use scenarios::Policy;
use serde_json::{json, Value};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};
use telemetry::table::Table;
use workloads::BullyIntensity;

/// Counts every heap allocation made through the global allocator, and
/// tracks live bytes so sections can report their peak-memory high-water
/// (the bounded-telemetry evidence for the production fleet run).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn track_alloc(size: u64) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        track_alloc(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Resets the peak-live-bytes high-water to the current live level and
/// returns that level; `peak_since(level)` after a section gives the
/// section's own high-water delta.
fn reset_peak() -> u64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

fn peak_since(level: u64) -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(level)
}

/// Allocation profile of one complete standalone single-box run — trace
/// generation, sim construction, and the step loop (the step loop
/// dominates at these window lengths): a colocated bully under blind
/// isolation, 2.3 simulated seconds, warmup included in the divisor.
///
/// Always runs at full scale, even under `--smoke` (it costs ~0.1 s wall):
/// a fixed window keeps allocs/sim-second comparable between the smoke CI
/// job and the committed full-mode baseline, because setup allocations
/// amortize over the same denominator.
fn singlebox_alloc_profile() -> Value {
    let measure = 2_000;
    let spec = ScenarioSpec::builder("allocprofile")
        .single_box(2_000.0)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::Blind { buffer_cores: 8 })
        .custom_scale(300, measure)
        .seed(4242)
        .build()
        .expect("valid spec");
    let sim_secs = (300 + measure) as f64 / 1_000.0;
    let (allocs_before, bytes_before) = alloc_snapshot();
    let wall = Instant::now();
    let report = run_spec(&spec, &RunOptions::serial()).expect("runnable spec");
    let wall = wall.elapsed().as_secs_f64();
    let (allocs_after, bytes_after) = alloc_snapshot();
    let allocs = allocs_after - allocs_before;
    let bytes = bytes_after - bytes_before;
    let queries = report.runs[0]
        .as_single_box()
        .expect("single box")
        .latency
        .count;
    println!(
        "single-box run (incl. setup): {:.0} allocs/sim-second ({:.1} MiB/sim-second), \
         {} queries completed, wall {:.2}s",
        allocs as f64 / sim_secs,
        bytes as f64 / sim_secs / (1 << 20) as f64,
        queries,
        wall,
    );
    json!({
        "sim_seconds": sim_secs,
        "allocations": allocs,
        "allocated_bytes": bytes,
        "allocations_per_sim_second": allocs as f64 / sim_secs,
        "queries_completed": queries,
        "wall_seconds": wall
    })
}

/// Drives one colocated single box directly (same shape as the alloc
/// profile scenario: high CPU bully, blind isolation with 8 buffer cores —
/// `PerfIsoConfig::default()` is exactly the profile's `Policy::Blind {
/// buffer_cores: 8 }` — same seed, same fixed window) and reads the
/// step-arena occupancy counters out of the live machine: slab high-water
/// and the range-reuse rate that makes the spawn path allocation-free.
fn arena_probe() -> Value {
    let measure_ms = 2_000;
    let cfg = BoxConfig::paper_box(
        SecondaryKind::cpu(BullyIntensity::High),
        Some(PerfIsoConfig::default()),
        4242,
    );
    let total = SimDuration::from_millis(300 + measure_ms);
    let qps = 2_000.0;
    let n_queries = (qps * total.as_secs_f64() * 1.05) as usize + 16;
    let trace = TraceGenerator::new(TraceConfig {
        queries: n_queries,
        ..TraceConfig::default()
    })
    .generate(cfg.seed ^ 0x7ACE);
    let mut client = OpenLoopClient::new(trace, qps, cfg.seed ^ 0xC1);
    let mut sim = BoxSim::new(cfg);
    let end = SimTime::ZERO + total;
    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
    }
    sim.advance_to(end);
    let s = sim.arena_stats();
    println!(
        "step arena: {} slab steps high-water ({} KiB), {:.1}% range reuse \
         ({} ranges allocated, {} live at end)",
        s.slab_steps,
        s.slab_bytes / 1024,
        s.reuse_rate() * 100.0,
        s.ranges_allocated,
        s.live_ranges,
    );
    json!({
        "slab_steps_high_water": s.slab_steps,
        "slab_bytes_high_water": s.slab_bytes,
        "peak_live_ranges": s.peak_live_ranges,
        "ranges_allocated": s.ranges_allocated,
        "ranges_reused": s.ranges_reused,
        "range_reuse_rate": s.reuse_rate(),
        "live_ranges_at_end": s.live_ranges
    })
}

/// Micro-probe of the `EventQueue` timer wheel in isolation: a steady
/// population of pending timers is cycled pop-earliest → push-replacement,
/// with replacement delays mixing the simulators' regimes (mostly
/// microsecond thread wakes, some millisecond slices and controller polls,
/// occasional seconds-scale far-future work that parks in the overflow
/// levels and cascades back down). Deterministic by seed; one op is one
/// push or one pop.
fn queue_probe() -> Value {
    const POPULATION: usize = 4096;
    const ROUNDS: u64 = 2_000_000;
    let mut q: EventQueue<u64> = EventQueue::with_capacity(POPULATION);
    let mut rng = SimRng::seed_from_u64(0x077E_E150);
    let delay = |rng: &mut SimRng| -> SimDuration {
        let r = rng.next_f64();
        if r < 0.70 {
            SimDuration::from_nanos(rng.range_u64(500, 64_000))
        } else if r < 0.95 {
            SimDuration::from_micros(rng.range_u64(500, 2_000))
        } else {
            SimDuration::from_millis(rng.range_u64(100, 2_000))
        }
    };
    let mut now = SimTime::ZERO;
    for i in 0..POPULATION as u64 {
        let d = delay(&mut rng);
        q.push(now + d, i);
    }
    let wall = Instant::now();
    let mut checksum = 0u64;
    for i in 0..ROUNDS {
        let (at, token) = q.pop().expect("population is steady");
        debug_assert!(at >= now);
        now = at;
        checksum = checksum.wrapping_add(token).rotate_left(1);
        let d = delay(&mut rng);
        q.push(now + d, i);
    }
    let wall = wall.elapsed().as_secs_f64();
    let ops = 2 * ROUNDS; // one pop + one push per round
    let ops_per_second = ops as f64 / wall;
    println!(
        "queue probe: {:.1}M timer-wheel ops/s ({} pops + {} pushes over {} pending, \
         wall {:.2}s, checksum {:x})",
        ops_per_second / 1e6,
        ROUNDS,
        ROUNDS,
        POPULATION,
        wall,
        checksum,
    );
    json!({
        "population": POPULATION,
        "ops": ops,
        "wall_seconds": wall,
        "ops_per_second": ops_per_second
    })
}

struct FleetRun {
    wall: f64,
    allocs: u64,
    alloc_bytes: u64,
    peak_bytes: u64,
    report: FleetReport,
}

fn timed_fleet(spec: &ScenarioSpec, threads: usize) -> FleetRun {
    let (allocs_before, bytes_before) = alloc_snapshot();
    let live = reset_peak();
    let wall = Instant::now();
    let report = run_spec(
        spec,
        &RunOptions {
            seeds: None,
            threads,
        },
    )
    .expect("runnable spec");
    let wall = wall.elapsed().as_secs_f64();
    let (allocs_after, bytes_after) = alloc_snapshot();
    FleetRun {
        wall,
        allocs: allocs_after - allocs_before,
        alloc_bytes: bytes_after - bytes_before,
        peak_bytes: peak_since(live),
        report: report.runs[0].as_fleet().expect("fleet target").clone(),
    }
}

/// Runs the serial sweep `repeats` times and keeps the median-wall run.
/// Wall-clock throughput on shared runners is noisy; a single slow timing
/// used to flap the `EVENTS-REGRESSION WARNING` against the committed
/// baseline, so the regression check now judges the median of at least
/// three repeats. Every repeat is the same deterministic simulation — the
/// reports are asserted bit-identical along the way.
fn median_serial_fleet(spec: &ScenarioSpec, repeats: usize) -> FleetRun {
    assert!(repeats >= 3, "median needs at least 3 repeats");
    let mut runs: Vec<FleetRun> = (0..repeats).map(|_| timed_fleet(spec, 1)).collect();
    for r in &runs[1..] {
        assert!(
            runs[0].report.bits_eq(&r.report),
            "serial fleet repeats diverged"
        );
    }
    runs.sort_by(|a, b| a.wall.partial_cmp(&b.wall).expect("finite wall times"));
    runs.swap_remove(repeats / 2)
}

fn fleet_run_json(label: &str, threads: usize, run: &FleetRun) -> Value {
    let slices_per_sec = run.report.slices as f64 / run.wall;
    let events_per_sec = run.report.sim_events as f64 / run.wall;
    json!({
        "label": label,
        "threads": threads,
        "wall_seconds": run.wall,
        "slices": run.report.slices,
        "slices_per_second": slices_per_sec,
        "sim_events": run.report.sim_events,
        "events_per_second": events_per_sec,
        "allocations": run.allocs,
        "allocated_bytes": run.alloc_bytes,
        "peak_memory_bytes": run.peak_bytes,
        "allocations_per_slice": run.allocs as f64 / run.report.slices as f64,
        "allocations_per_sim_event": run.allocs as f64 / run.report.sim_events as f64,
        "mean_utilization": run.report.mean_utilization,
        "max_p99_ms": run.report.max_p99.as_millis_f64()
    })
}

/// Loads the previous report from `path` (the committed baseline) and
/// prints the deltas this run will be judged against: allocs/sim-second
/// for the single-box profile and fleet events/second for the serial run.
/// Returns the warning state for the JSON payload.
fn baseline_delta(path: &str, profile: &Value, smoke: bool, serial: &FleetRun) -> Value {
    let Ok(raw) = std::fs::read_to_string(path) else {
        println!("no committed baseline at {path}; skipping delta");
        return json!({ "available": false });
    };
    let Ok(base) = serde_json::from_str::<Value>(&raw) else {
        println!("unparsable baseline at {path}; skipping delta");
        return json!({ "available": false });
    };
    let allocs_per_sim_sec = profile["allocations_per_sim_second"]
        .as_f64()
        .expect("profile emitted");
    let base_allocs = base["singlebox_allocations"]["allocations_per_sim_second"].as_f64();
    let Some(base_allocs) = base_allocs else {
        println!("baseline at {path} lacks an alloc profile; skipping delta");
        return json!({ "available": false });
    };
    let alloc_ratio = allocs_per_sim_sec / base_allocs;
    // Setup allocations amortize over the profiled window, so the ratio is
    // only a regression signal when both runs profiled the same window
    // (always true since the profile window became fixed; guards against
    // comparing with an older variable-window baseline).
    let alloc_comparable =
        base["singlebox_allocations"]["sim_seconds"].as_f64() == profile["sim_seconds"].as_f64();
    let mode_note = if alloc_comparable {
        ""
    } else {
        " (baseline profiled a different window; not comparable, no regression check)"
    };
    println!(
        "vs committed baseline: {:.0} -> {:.0} allocs/sim-second ({:+.1}%){}",
        base_allocs,
        allocs_per_sim_sec,
        (alloc_ratio - 1.0) * 100.0,
        mode_note,
    );
    let alloc_regressed = alloc_comparable && alloc_ratio > 1.10;
    if alloc_regressed {
        println!(
            "ALLOC-REGRESSION WARNING: allocs/sim-second {:.1}% above the \
             committed baseline (threshold 10%)",
            (alloc_ratio - 1.0) * 100.0,
        );
    }

    // Fleet throughput: events/second of the serial run vs the baseline's.
    // This is a wall-clock rate, so it is warn-only like the alloc check,
    // and only compared when the baseline ran the same fleet configuration
    // (the committed baseline is full-mode; a --smoke run reports the delta
    // as informational only).
    let events_per_sec = serial.report.sim_events as f64 / serial.wall;
    let base_events = base["runs"][0]["events_per_second"].as_f64();
    let (events_ratio, events_comparable, events_regressed) = match base_events {
        Some(base_events) if base_events > 0.0 => {
            let ratio = events_per_sec / base_events;
            let comparable = base["smoke"].as_bool() == Some(smoke);
            let mode_note = if comparable {
                ""
            } else {
                " (baseline ran a different fleet configuration; informational only)"
            };
            println!(
                "vs committed baseline: {:.2}M -> {:.2}M fleet events/second ({:+.1}%){}",
                base_events / 1e6,
                events_per_sec / 1e6,
                (ratio - 1.0) * 100.0,
                mode_note,
            );
            let regressed = comparable && ratio < 0.90;
            if regressed {
                println!(
                    "EVENTS-REGRESSION WARNING: fleet events/second {:.1}% below the \
                     committed baseline (threshold 10%)",
                    (1.0 - ratio) * 100.0,
                );
            }
            (Some(ratio), comparable, regressed)
        }
        _ => {
            println!("baseline at {path} lacks an events/second figure; skipping throughput delta");
            (None, false, false)
        }
    };

    json!({
        "available": true,
        "comparable": alloc_comparable,
        "baseline_allocations_per_sim_second": base_allocs,
        "alloc_ratio": alloc_ratio,
        "regressed": alloc_regressed,
        "events_comparable": events_comparable,
        "baseline_events_per_second": base_events.map_or(Value::Null, Value::from),
        "events_ratio": events_ratio.map_or(Value::Null, Value::from),
        "events_regressed": events_regressed
    })
}

/// The production-day probe: runs the registry's `fleet-production`
/// scenario (24 simulated hours, heterogeneous hardware, tenant churn,
/// sketch telemetry) and reports its events/second, peak-memory
/// high-water, and the merged latency sketch. `--smoke` shrinks the
/// day to a seconds-scale sample; the committed full-mode baseline runs
/// the whole 1152-slice day (shrink it further with `PERFISO_SCALE`).
fn fleet_production_probe(smoke: bool) -> Value {
    let mut spec = scenarios::spec::named("fleet-production").expect("registered scenario");
    if smoke {
        if let TargetSpec::Fleet {
            ref mut sampled_machines,
            ref mut minutes,
            ref mut slice_ms,
            ..
        } = spec.target
        {
            *sampled_machines = 1;
            *minutes = 8;
            *slice_ms = 120;
        }
        spec.validate().expect("still a valid spec");
    }
    let live = reset_peak();
    let wall = Instant::now();
    let report = run_spec(
        &spec,
        &RunOptions {
            seeds: None,
            threads: 0,
        },
    )
    .expect("runnable scenario");
    let wall = wall.elapsed().as_secs_f64();
    let peak = peak_since(live);
    let fleet = report.runs[0].as_fleet().expect("fleet target");
    let sketch = fleet
        .latency_sketch
        .expect("fleet-production uses sketch telemetry");
    println!(
        "fleet-production: {} slices in {:.2}s wall, {:.2}M events/s, \
         peak memory {:.1} MiB, sketch p99 {:.2} ms (±{:.1}% of {} samples)",
        fleet.slices,
        wall,
        fleet.sim_events as f64 / wall / 1e6,
        peak as f64 / (1 << 20) as f64,
        sketch.p99.as_millis_f64(),
        sketch.relative_error * 100.0,
        sketch.count,
    );
    json!({
        "smoke": smoke,
        "slices": fleet.slices,
        "wall_seconds": wall,
        "sim_events": fleet.sim_events,
        "events_per_second": fleet.sim_events as f64 / wall,
        "peak_memory_bytes": peak,
        "mean_utilization": fleet.mean_utilization,
        "sketch": {
            "count": sketch.count,
            "dropped": sketch.dropped,
            "p50_ms": sketch.p50.as_millis_f64(),
            "p99_ms": sketch.p99.as_millis_f64(),
            "max_ms": sketch.max.as_millis_f64(),
            "relative_error": sketch.relative_error
        }
    })
}

/// Resilience-counter probe: runs the registry's two resilience-heavy
/// scenarios — `chaos-connection-flood` (admission shedding under a
/// synthetic arrival flood) and `graph-hedged` (retries, hedging, and
/// per-edge breakers on a fan-out graph) — and reports the merged
/// counters. Both runs are deterministic, so the counters are exact
/// figures, not samples; any drift against the committed baseline means
/// the resilience subsystem changed behaviour (surfaced by the warn-only
/// `RESILIENCE-DRIFT WARNING` annotation, same policy as the alloc
/// check). `--smoke` shrinks the hedged-graph window; the flood scenario
/// keeps its registered window because its fault times are absolute.
fn resilience_probe(smoke: bool) -> Value {
    let flood = scenarios::spec::named("chaos-connection-flood").expect("registered scenario");
    let mut hedged = scenarios::spec::named("graph-hedged").expect("registered scenario");
    if smoke {
        hedged.scale = scenarios::spec::ScaleSpec::Custom {
            warmup_ms: 150,
            measure_ms: 400,
        };
        hedged.validate().expect("still a valid spec");
    }
    let mut merged = telemetry::ResilienceStats::default();
    for spec in [&flood, &hedged] {
        let report = run_spec(spec, &RunOptions::serial()).expect("runnable scenario");
        for run in &report.runs {
            if let Some(stats) = &run.as_single_box().expect("single box").resilience {
                merged.merge(stats);
            }
        }
    }
    println!(
        "resilience probe: {} sheds, {} retries, {} hedges ({} won / {} lost), \
         {} breaker opens ({} fast-fails), {} deadline cancels",
        merged.sheds,
        merged.retries,
        merged.hedges_launched,
        merged.hedges_won,
        merged.hedges_lost,
        merged.breaker_opens,
        merged.breaker_fast_fails,
        merged.deadline_cancels,
    );
    json!({
        "smoke": smoke,
        "scenarios": ["chaos-connection-flood", "graph-hedged"],
        "sheds": merged.sheds,
        "retries": merged.retries,
        "hedges_launched": merged.hedges_launched,
        "hedges_won": merged.hedges_won,
        "hedges_lost": merged.hedges_lost,
        "breaker_opens": merged.breaker_opens,
        "breaker_fast_fails": merged.breaker_fast_fails,
        "deadline_cancels": merged.deadline_cancels
    })
}

/// Warn-only drift check for the resilience counters: they are fully
/// deterministic, so a baseline produced by the same scenario windows
/// must match exactly; any difference is a behaviour change worth a CI
/// annotation (but never a gate — re-bless by committing the new
/// `BENCH_fleet.json`).
fn resilience_drift(baseline: &Value, probe: &Value) -> bool {
    let base = &baseline["resilience"];
    if base["smoke"].as_bool() != probe["smoke"].as_bool() {
        println!("baseline resilience block missing or ran a different mode; skipping drift check");
        return false;
    }
    let keys = [
        "sheds",
        "retries",
        "hedges_launched",
        "hedges_won",
        "hedges_lost",
        "breaker_opens",
        "breaker_fast_fails",
        "deadline_cancels",
    ];
    let mut drifted = false;
    for k in keys {
        let (b, p) = (base[k].as_u64(), probe[k].as_u64());
        if b != p {
            println!(
                "RESILIENCE-DRIFT WARNING: {k} {} -> {} vs committed baseline \
                 (deterministic counter; behaviour changed)",
                b.map_or("absent".into(), |v| v.to_string()),
                p.map_or("absent".into(), |v| v.to_string()),
            );
            drifted = true;
        }
    }
    if !drifted {
        println!("resilience counters match the committed baseline exactly");
    }
    drifted
}

/// Speculative-sync probe: runs one cluster scenario conservatively, then
/// again with [`cluster::SpeculationConfig`] enabled, asserts the two
/// reports byte-identical (the speculation determinism oracle, enforced
/// under the perf gate too), and reports what speculation did — sessions,
/// checkpoints, rollbacks, and both modes' throughput. A rollback ratio
/// past 0.5 earns a warn-only `ROLLBACK-THRASH WARNING` annotation, same
/// policy as the alloc check. On a machine without spare cores the
/// speculative run is expected to be ~1× or slower (checkpoint copies are
/// pure overhead when boxes cannot run ahead in parallel); the block
/// reports reality, it does not gate.
fn speculation_probe(smoke: bool) -> Value {
    use cluster::{ClusterSim, Topology};

    // Full mode probes the paper-scale cluster, where 8k QPS of cross-box
    // traffic makes speculation thrash (~97% of sessions roll back with
    // the default window) — the measure interval is kept short because
    // the probe's cost IS that thrash, and one honest sample per run is
    // enough to track it.
    let (topo, qps, warm_ms, meas_ms) = if smoke {
        (Topology::small(), 600.0, 200u64, 600u64)
    } else {
        (Topology::paper_cluster(), 8_000.0, 150u64, 350u64)
    };
    let spec = ScenarioSpec::builder("speculation-probe")
        .cluster(topo, qps)
        .policy(Policy::FullPerfIso)
        .cpu_bully(BullyIntensity::Mid)
        .custom_scale(warm_ms, meas_ms)
        .seed(2024)
        .build()
        .expect("valid cluster spec");

    let wall = Instant::now();
    let conservative = ClusterSim::new(spec.cluster_config(spec.seed, 1).expect("cluster")).run();
    let wall_cons = wall.elapsed().as_secs_f64();

    let mut cfg = spec.cluster_config(spec.seed, 1).expect("cluster");
    cfg.speculation.enabled = true;
    let wall = Instant::now();
    let (speculative, stats) = ClusterSim::new(cfg).run_with_speculation_stats();
    let wall_spec = wall.elapsed().as_secs_f64();

    assert_eq!(
        serde_json::to_string(&conservative).expect("serializable"),
        serde_json::to_string(&speculative).expect("serializable"),
        "speculative cluster report diverged from conservative (stats {stats:?})"
    );

    let ratio = stats.rollback_ratio();
    let speedup = wall_cons / wall_spec;
    println!(
        "speculation probe: {} sessions, {} checkpoints, {} rollbacks \
         (ratio {:.2}), {} steps released / {} replayed; \
         conservative {:.2}s vs speculative {:.2}s wall ({:.2}x, \
         reports verified byte-identical)",
        stats.sessions,
        stats.checkpoints,
        stats.rollbacks,
        ratio,
        stats.released_steps,
        stats.replayed_steps,
        wall_cons,
        wall_spec,
        speedup,
    );
    if stats.sessions > 0 && ratio > 0.5 {
        println!(
            "ROLLBACK-THRASH WARNING: {:.0}% of speculation sessions rolled \
             back (threshold 50%); the window is wasting checkpoint work",
            ratio * 100.0,
        );
    }
    json!({
        "smoke": smoke,
        "scenario": spec.target.describe(),
        "sessions": stats.sessions,
        "checkpoints": stats.checkpoints,
        "rollbacks": stats.rollbacks,
        "unwinds": stats.unwinds,
        "commits": stats.commits,
        "released_steps": stats.released_steps,
        "replayed_steps": stats.replayed_steps,
        "rollback_ratio": ratio,
        "conservative": {
            "wall_seconds": wall_cons,
            "queries_per_second": conservative.completed as f64 / wall_cons
        },
        "speculative": {
            "wall_seconds": wall_spec,
            "queries_per_second": speculative.completed as f64 / wall_spec
        },
        "speedup_vs_conservative": speedup,
        "thrashing": stats.sessions > 0 && ratio > 0.5
    })
}

/// Bit-exact comparison of the two reports; parallelism must not change a
/// single ULP anywhere.
fn assert_identical(serial: &FleetReport, parallel: &FleetReport) {
    assert!(
        serial.bits_eq(parallel),
        "parallel fleet report diverged from serial"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let spec = if smoke {
        ScenarioSpec::builder("fleetbench-smoke").fleet(8, 2, 200)
    } else {
        ScenarioSpec::builder("fleetbench").fleet(24, 3, 500)
    }
    .policy(Policy::Blind { buffer_cores: 8 })
    .seed(99)
    .build()
    .expect("valid fleet spec");

    println!(
        "fleet bench: {}, {} cores available{}",
        spec.target.describe(),
        threads,
        if smoke { " [smoke]" } else { "" },
    );

    let alloc_profile = singlebox_alloc_profile();
    let arena = arena_probe();
    let queue = queue_probe();

    let serial = median_serial_fleet(&spec, 3);
    let parallel = timed_fleet(&spec, 0);
    assert_identical(&serial.report, &parallel.report);
    let speedup = serial.wall / parallel.wall;

    let mut t = Table::new(&["run", "threads", "wall (s)", "slices/s", "events/s"]);
    for (label, n, run) in [
        ("serial", 1usize, &serial),
        ("parallel", threads, &parallel),
    ] {
        t.row_owned(vec![
            label.to_string(),
            format!("{n}"),
            format!("{:.2}", run.wall),
            format!("{:.1}", run.report.slices as f64 / run.wall),
            format!("{:.0}", run.report.sim_events as f64 / run.wall),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nparallel speedup: {speedup:.2}x on {threads} cores \
         (reports verified bit-identical)"
    );
    println!(
        "fleet allocations: {} serial ({:.1}/slice, {:.4}/event)",
        serial.allocs,
        serial.allocs as f64 / serial.report.slices as f64,
        serial.allocs as f64 / serial.report.sim_events as f64,
    );

    let production = fleet_production_probe(smoke);
    let resilience = resilience_probe(smoke);
    let speculation = speculation_probe(smoke);

    let path = std::env::var("PERFISO_BENCH_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    let baseline = baseline_delta(&path, &alloc_profile, smoke, &serial);
    let resilience_drifted = std::fs::read_to_string(&path)
        .ok()
        .and_then(|raw| serde_json::from_str::<Value>(&raw).ok())
        .is_some_and(|base| resilience_drift(&base, &resilience));

    let out = json!({
        "bench": "fleet",
        "smoke": smoke,
        "cores": threads,
        "config": {
            "minutes": serial.report.qps.len(),
            "slices": serial.report.slices
        },
        "singlebox_allocations": alloc_profile,
        "arena": arena,
        "queue": queue,
        "fleet_production": production,
        "resilience": resilience,
        "resilience_drifted": resilience_drifted,
        "speculation": speculation,
        "baseline_delta": baseline,
        "runs": [
            fleet_run_json("serial", 1, &serial),
            fleet_run_json("parallel", threads, &parallel)
        ],
        "speedup": speedup
    });
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
