//! The isolation policies compared across the paper's figures.

use perfiso::{CpuPolicy, PerfIsoConfig};
use serde::{Deserialize, Serialize};

/// One of the evaluated isolation configurations (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Primary alone on the machine (no secondary at all).
    Standalone,
    /// Colocated, no isolation whatsoever.
    NoIsolation,
    /// CPU blind isolation with the given buffer-core count.
    Blind {
        /// Idle cores reserved for primary bursts.
        buffer_cores: u32,
    },
    /// Static core restriction: the secondary may use only this many cores.
    StaticCores(u32),
    /// Static CPU-cycle cap as a fraction of machine CPU in `(0, 1]`.
    CycleCap(f64),
    /// The full production controller (§5.3): blind isolation plus the
    /// static HDFS I/O caps and DWRR priorities of the cluster deployment.
    FullPerfIso,
}

impl Policy {
    /// The PerfIso configuration implementing this policy (`None` when no
    /// controller should run).
    pub fn perfiso_config(&self) -> Option<PerfIsoConfig> {
        match *self {
            Policy::Standalone | Policy::NoIsolation => None,
            Policy::Blind { buffer_cores } => Some(PerfIsoConfig {
                cpu: CpuPolicy::Blind { buffer_cores },
                ..PerfIsoConfig::default()
            }),
            Policy::StaticCores(n) => Some(PerfIsoConfig {
                cpu: CpuPolicy::StaticCores(n),
                ..PerfIsoConfig::default()
            }),
            Policy::CycleCap(f) => Some(PerfIsoConfig {
                cpu: CpuPolicy::CycleCap(f),
                ..PerfIsoConfig::default()
            }),
            Policy::FullPerfIso => Some(PerfIsoConfig::paper_cluster()),
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> String {
        match *self {
            Policy::Standalone => "standalone".into(),
            Policy::NoIsolation => "no-isolation".into(),
            Policy::Blind { buffer_cores } => format!("blind(B={buffer_cores})"),
            Policy::StaticCores(n) => format!("static-cores({n})"),
            Policy::CycleCap(f) => format!("cycle-cap({:.0}%)", f * 100.0),
            Policy::FullPerfIso => "perfiso-full".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let policies = [
            Policy::Standalone,
            Policy::NoIsolation,
            Policy::Blind { buffer_cores: 8 },
            Policy::StaticCores(8),
            Policy::CycleCap(0.05),
            Policy::FullPerfIso,
        ];
        let labels: std::collections::HashSet<String> =
            policies.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), policies.len());
    }

    #[test]
    fn configs_match_policies() {
        assert!(Policy::Standalone.perfiso_config().is_none());
        assert!(Policy::NoIsolation.perfiso_config().is_none());
        let c = Policy::Blind { buffer_cores: 4 }.perfiso_config().unwrap();
        assert_eq!(c.cpu, CpuPolicy::Blind { buffer_cores: 4 });
        let c = Policy::CycleCap(0.45).perfiso_config().unwrap();
        assert_eq!(c.cpu, CpuPolicy::CycleCap(0.45));
        let c = Policy::FullPerfIso.perfiso_config().unwrap();
        assert_eq!(c.cpu, CpuPolicy::paper_default());
        assert_eq!(c.tenant_limits.len(), 2);
    }

    #[test]
    fn policy_round_trips_through_json() {
        for p in [
            Policy::Standalone,
            Policy::Blind { buffer_cores: 8 },
            Policy::StaticCores(16),
            Policy::CycleCap(0.25),
            Policy::FullPerfIso,
        ] {
            let text = serde_json::to_string(&p).expect("serializable");
            let back: Policy = serde_json::from_str(&text).expect("parseable");
            assert_eq!(back, p);
        }
    }
}
