//! Single-machine experiment drivers (Figs 4–8).

use indexserve::{BoxConfig, BoxReport, SecondaryKind};
use simcore::SimDuration;
use workloads::{BullyIntensity, DiskBully};

use crate::policies::Policy;

/// Run-length scaling.
///
/// The measured window trades percentile resolution for wall-clock time;
/// integration tests use [`Scale::quick`], benches default to
/// [`Scale::bench`] and honour the `PERFISO_SCALE` environment variable as
/// an extra multiplier.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
}

impl Scale {
    /// Short runs for tests (~2 s simulated).
    pub fn quick() -> Self {
        Scale {
            warmup: SimDuration::from_millis(400),
            measure: SimDuration::from_millis(1_600),
        }
    }

    /// Bench default (~6 s simulated), times the `PERFISO_SCALE` env var.
    pub fn bench() -> Self {
        let mult: f64 = std::env::var("PERFISO_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        Scale {
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_millis((6_000.0 * mult.max(0.1)) as u64),
        }
    }

    fn plan(&self, qps: f64) -> indexserve::boxsim::RunPlan {
        indexserve::boxsim::RunPlan {
            qps,
            warmup: self.warmup,
            measure: self.measure,
            trace: qtrace::TraceConfig::default(),
        }
    }
}

/// Runs one policy × bully-intensity × load cell.
pub fn run_with_policy(
    policy: Policy,
    intensity: BullyIntensity,
    qps: f64,
    seed: u64,
    scale: Scale,
) -> BoxReport {
    let secondary = match policy {
        Policy::Standalone => SecondaryKind::none(),
        _ => SecondaryKind::cpu(intensity),
    };
    let cfg = BoxConfig::paper_box(secondary, policy.perfiso_config(), seed);
    indexserve::boxsim::run_standalone(cfg, &scale.plan(qps))
}

/// The standalone baseline (Fig 4, first bar group).
pub fn standalone(qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(Policy::Standalone, BullyIntensity::High, qps, seed, scale)
}

/// Colocation without isolation (Fig 4).
pub fn no_isolation(intensity: BullyIntensity, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(Policy::NoIsolation, intensity, qps, seed, scale)
}

/// CPU blind isolation (Fig 5): high bully, given buffer cores.
pub fn blind_isolation(buffer_cores: u32, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::Blind { buffer_cores },
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// Static core restriction (Fig 6): high bully on `cores` cores.
pub fn static_cores(cores: u32, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::StaticCores(cores),
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// Static cycle cap (Fig 7): high bully at `pct` of machine CPU.
pub fn cycle_cap(pct: f64, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::CycleCap(pct),
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// A disk-bound secondary under full PerfIso (cluster-style settings).
pub fn disk_bully_with_perfiso(qps: f64, seed: u64, scale: Scale) -> BoxReport {
    let cfg = BoxConfig::paper_box(
        SecondaryKind::disk(DiskBully::default()),
        Some(perfiso::PerfIsoConfig::paper_cluster()),
        seed,
    );
    indexserve::boxsim::run_standalone(cfg, &scale.plan(qps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_var_is_honoured() {
        // No env var: default 6s.
        let s = Scale::bench();
        assert!(s.measure >= SimDuration::from_millis(500));
    }

    #[test]
    fn policy_to_secondary_mapping() {
        let s = Scale {
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(400),
        };
        let r = standalone(500.0, 1, s);
        assert_eq!(
            r.secondary_cpu,
            SimDuration::ZERO,
            "standalone has no bully"
        );
    }
}
