//! Single-machine experiment helpers (Figs 4–8).
//!
//! Thin convenience wrappers over [`crate::spec`]: each function builds
//! the corresponding [`crate::spec::ScenarioSpec`] and runs it once. Use
//! the spec API directly for multi-seed sweeps, cluster/fleet targets, or
//! JSON round-trips.

use std::sync::OnceLock;

use indexserve::BoxReport;
use simcore::SimDuration;
use workloads::{BullyIntensity, DiskBully};

use crate::policies::Policy;
use crate::spec::{run_spec, RunOptions, ScaleSpec, ScenarioSpec};

/// The cached `PERFISO_SCALE` multiplier.
static SCALE_MULTIPLIER: OnceLock<f64> = OnceLock::new();

/// The `PERFISO_SCALE` run-length multiplier, parsed once per process.
///
/// # Panics
///
/// Panics (once, with the offending value) when the variable is set but
/// is not a positive finite number — a silent fallback to 1.0 would make
/// a typo in a bench invocation indistinguishable from the default.
pub fn scale_multiplier() -> f64 {
    *SCALE_MULTIPLIER.get_or_init(|| match std::env::var("PERFISO_SCALE") {
        Err(_) => 1.0,
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(m) if m.is_finite() && m > 0.0 => m,
            _ => panic!(
                "invalid PERFISO_SCALE value {v:?}: expected a positive finite \
                 multiplier (e.g. 0.5 or 4)"
            ),
        },
    })
}

/// Run-length scaling.
///
/// The measured window trades percentile resolution for wall-clock time;
/// integration tests use [`Scale::quick`], benches default to
/// [`Scale::bench`] and honour the `PERFISO_SCALE` environment variable as
/// an extra multiplier (see [`scale_multiplier`]).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
}

impl Scale {
    /// Short runs for tests (~2 s simulated).
    pub fn quick() -> Self {
        Scale {
            warmup: SimDuration::from_millis(400),
            measure: SimDuration::from_millis(1_600),
        }
    }

    /// Bench default (~6 s simulated), times the `PERFISO_SCALE` env var
    /// (floored at 0.1 so a tiny multiplier cannot produce a degenerate
    /// zero-length measurement window).
    pub fn bench() -> Self {
        Scale {
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_millis((6_000.0 * scale_multiplier().max(0.1)) as u64),
        }
    }
}

/// Runs a validated single-box spec once and unwraps the box report.
fn run_single(spec: ScenarioSpec) -> BoxReport {
    let report = run_spec(&spec, &RunOptions::serial()).expect("helper spec is valid");
    report.runs[0]
        .as_single_box()
        .expect("single-box target")
        .clone()
}

/// Runs one policy × bully-intensity × load cell.
pub fn run_with_policy(
    policy: Policy,
    intensity: BullyIntensity,
    qps: f64,
    seed: u64,
    scale: Scale,
) -> BoxReport {
    let mut builder = ScenarioSpec::builder("adhoc")
        .single_box(qps)
        .policy(policy)
        .scale(ScaleSpec::from_scale(scale))
        .seed(seed);
    if policy != Policy::Standalone {
        builder = builder.cpu_bully(intensity);
    }
    run_single(builder.build().expect("helper spec is valid"))
}

/// The standalone baseline (Fig 4, first bar group).
pub fn standalone(qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(Policy::Standalone, BullyIntensity::High, qps, seed, scale)
}

/// Colocation without isolation (Fig 4).
pub fn no_isolation(intensity: BullyIntensity, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(Policy::NoIsolation, intensity, qps, seed, scale)
}

/// CPU blind isolation (Fig 5): high bully, given buffer cores.
pub fn blind_isolation(buffer_cores: u32, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::Blind { buffer_cores },
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// Static core restriction (Fig 6): high bully on `cores` cores.
pub fn static_cores(cores: u32, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::StaticCores(cores),
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// Static cycle cap (Fig 7): high bully at `pct` of machine CPU.
pub fn cycle_cap(pct: f64, qps: f64, seed: u64, scale: Scale) -> BoxReport {
    run_with_policy(
        Policy::CycleCap(pct),
        BullyIntensity::High,
        qps,
        seed,
        scale,
    )
}

/// A disk-bound secondary under full PerfIso (cluster-style settings).
pub fn disk_bully_with_perfiso(qps: f64, seed: u64, scale: Scale) -> BoxReport {
    let spec = ScenarioSpec::builder("adhoc")
        .single_box(qps)
        .disk_bully(DiskBully::default())
        .policy(Policy::FullPerfIso)
        .scale(ScaleSpec::from_scale(scale))
        .seed(seed)
        .build()
        .expect("helper spec is valid");
    run_single(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_var_is_honoured() {
        // No env var in the test environment: default 6s.
        let s = Scale::bench();
        assert!(s.measure >= SimDuration::from_millis(500));
        // And the multiplier is cached: repeated calls agree bit-for-bit.
        assert_eq!(scale_multiplier().to_bits(), scale_multiplier().to_bits());
    }

    #[test]
    fn policy_to_secondary_mapping() {
        let s = Scale {
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(400),
        };
        let r = standalone(500.0, 1, s);
        assert_eq!(
            r.secondary_cpu,
            SimDuration::ZERO,
            "standalone has no bully"
        );
    }
}
