//! Experiment descriptions and drivers shared by the integration tests,
//! examples, benches, and the `perfiso-run` CLI.
//!
//! The [`spec`] module is the one way to describe and run an experiment:
//! a declarative [`spec::ScenarioSpec`] (workload × secondary ×
//! [`Policy`] × target), a registry of named paper scenarios, and a
//! multi-seed runner whose parallel sweeps are bit-identical to serial
//! ones. [`singlebox`] keeps thin one-call helpers (`standalone`,
//! `blind_isolation`, …) for the common single-box cells; each builds a
//! spec under the hood.
//!
//! Runs are scaled by [`Scale`]: the default keeps test runtimes modest;
//! setting the `PERFISO_SCALE` environment variable to a multiplier
//! lengthens the measured windows for tighter percentiles (parsed once,
//! see [`singlebox::scale_multiplier`]).

pub mod policies;
pub mod singlebox;
pub mod spec;

pub use policies::Policy;
pub use singlebox::{
    blind_isolation, cycle_cap, no_isolation, run_with_policy, scale_multiplier, standalone,
    static_cores, Scale,
};
