//! Experiment drivers shared by the integration tests, examples, and the
//! benchmark harness.
//!
//! Each function runs one *bar group* of a paper figure and returns a
//! [`indexserve::BoxReport`] (or a cluster report); the bench targets format
//! them into the tables printed by `cargo bench`.
//!
//! Runs are scaled by [`Scale`]: the default keeps test runtimes modest;
//! `Scale::paper()` (or setting the `PERFISO_SCALE` environment variable to
//! a multiplier) lengthens the measured windows for tighter percentiles.

pub mod policies;
pub mod singlebox;

pub use policies::Policy;
pub use singlebox::{
    blind_isolation, cycle_cap, no_isolation, run_with_policy, standalone, static_cores, Scale,
};
