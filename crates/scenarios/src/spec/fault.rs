//! Spec-expressible fault injection (chaos scenarios).
//!
//! [`FaultSpec`] makes the paper's §4.2 operational story declarative: a
//! scenario carries a timeline of [`FaultEvent`]s — controller crashes,
//! secondary/box restarts, staged config rollouts — plus the Autopilot
//! [`RestartSpec`] governing crash backoff. The spec layer validates the
//! timeline against the scenario (a controller crash needs a policy that
//! runs a controller; a secondary restart needs a secondary) and compiles
//! it into the runtime [`FaultPlan`](indexserve::FaultPlan) the simulators
//! execute. Everything round-trips through JSON like the rest of the spec
//! API, and fault knobs are sweepable via
//! [`SweepAxis::FaultDowntimePolls`](super::SweepAxis).

use autopilot::RestartPolicy;
use indexserve::{FaultPlan, PlannedFault, PlannedFaultKind};
use perfiso::PerfIsoConfig;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use super::ControllerSpec;

/// One declarative fault on the scenario timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Kill the PerfIso controller at `at_ms`; the box degrades to the
    /// no-isolation regime until Autopilot restarts it from checkpoint.
    ControllerCrash {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Minimum downtime in controller CPU-poll periods (the actual
        /// downtime is the max of this and the restart backoff).
        downtime_polls: u32,
    },
    /// Kill and respawn the secondary workload.
    SecondaryRestart {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Minimum downtime in milliseconds.
        downtime_ms: u64,
    },
    /// Restart the IndexServe process: in-flight queries fail, arrivals
    /// are refused until it is back.
    BoxRestart {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Minimum downtime in milliseconds.
        downtime_ms: u64,
    },
    /// Publish a controller configuration document; controllers pick it up
    /// at their next poll, staged across the fleet.
    ConfigRollout {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Config-store document key.
        key: String,
        /// Overrides applied on top of the scenario's effective controller
        /// configuration to produce the rolled-out document.
        doc: ControllerSpec,
        /// Percentage of the fleet (leading boxes) that applies the
        /// rollout, in `1..=100`. Single boxes always apply it.
        staged_pct: u8,
        /// Automatic rollback: revert when the post-rollout P99 exceeds
        /// this threshold (milliseconds).
        rollback_p99_ms: Option<u64>,
    },
    /// A rapid service-lifecycle churn storm: `cycles` kill-and-respawn
    /// rounds of the secondary, `period_ms` apart, starting at `at_ms`.
    ChurnStorm {
        /// Storm start in simulation milliseconds.
        at_ms: u64,
        /// Number of churn cycles.
        cycles: u32,
        /// Spacing between cycle starts in milliseconds.
        period_ms: u64,
        /// Minimum downtime per cycle in milliseconds.
        downtime_ms: u64,
    },
    /// An arrival-rate flood: for `duration_ms` the box injects
    /// `extra_qps` extra synthetic arrivals per second on top of the
    /// external load, for admission control to absorb.
    ConnectionFlood {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Flood duration in milliseconds.
        duration_ms: u64,
        /// Additional arrivals per second while flooding.
        extra_qps: u32,
    },
    /// An I/O tenant exhausting its quota: for `duration_ms` the tenant's
    /// operations are inflated by `multiplier`, driving it into its IOPS
    /// cap under the scenario's per-tenant limits.
    QuotaExhaustion {
        /// Fire time in simulation milliseconds.
        at_ms: u64,
        /// Episode duration in milliseconds.
        duration_ms: u64,
        /// The I/O tenant (`disk-bully`, `hdfs-replication`, or
        /// `hdfs-client`).
        tenant: String,
        /// Byte-size inflation applied while the episode lasts (> 1).
        multiplier: f64,
    },
}

impl FaultEvent {
    /// Fire time in simulation milliseconds.
    pub fn at_ms(&self) -> u64 {
        match self {
            FaultEvent::ControllerCrash { at_ms, .. }
            | FaultEvent::SecondaryRestart { at_ms, .. }
            | FaultEvent::BoxRestart { at_ms, .. }
            | FaultEvent::ConfigRollout { at_ms, .. }
            | FaultEvent::ChurnStorm { at_ms, .. }
            | FaultEvent::ConnectionFlood { at_ms, .. }
            | FaultEvent::QuotaExhaustion { at_ms, .. } => *at_ms,
        }
    }

    /// Short kind tag, matching [`FaultRecord::kind`](indexserve::FaultRecord).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultEvent::ControllerCrash { .. } => "controller-crash",
            FaultEvent::SecondaryRestart { .. } => "secondary-restart",
            FaultEvent::BoxRestart { .. } => "box-restart",
            FaultEvent::ConfigRollout { .. } => "config-rollout",
            FaultEvent::ChurnStorm { .. } => "churn-storm",
            FaultEvent::ConnectionFlood { .. } => "connection-flood",
            FaultEvent::QuotaExhaustion { .. } => "quota-exhaustion",
        }
    }

    /// One-line description for timelines and `show`.
    pub fn describe(&self) -> String {
        match self {
            FaultEvent::ControllerCrash {
                at_ms,
                downtime_polls,
            } => format!("t={at_ms}ms controller-crash (≥{downtime_polls} polls down)"),
            FaultEvent::SecondaryRestart { at_ms, downtime_ms } => {
                format!("t={at_ms}ms secondary-restart (≥{downtime_ms}ms down)")
            }
            FaultEvent::BoxRestart { at_ms, downtime_ms } => {
                format!("t={at_ms}ms box-restart (≥{downtime_ms}ms down)")
            }
            FaultEvent::ConfigRollout {
                at_ms,
                key,
                staged_pct,
                rollback_p99_ms,
                ..
            } => {
                let rb = match rollback_p99_ms {
                    Some(ms) => format!(", rollback if p99 > {ms}ms"),
                    None => String::new(),
                };
                format!("t={at_ms}ms config-rollout key={key:?} staged={staged_pct}%{rb}")
            }
            FaultEvent::ChurnStorm {
                at_ms,
                cycles,
                period_ms,
                downtime_ms,
            } => format!(
                "t={at_ms}ms churn-storm ({cycles} cycles every {period_ms}ms, ≥{downtime_ms}ms down each)"
            ),
            FaultEvent::ConnectionFlood {
                at_ms,
                duration_ms,
                extra_qps,
            } => format!("t={at_ms}ms connection-flood (+{extra_qps} qps for {duration_ms}ms)"),
            FaultEvent::QuotaExhaustion {
                at_ms,
                duration_ms,
                tenant,
                multiplier,
            } => format!(
                "t={at_ms}ms quota-exhaustion ({tenant} ops ×{multiplier} for {duration_ms}ms)"
            ),
        }
    }
}

/// The Autopilot restart policy, spec-side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartSpec {
    /// Initial backoff in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per consecutive failure.
    pub multiplier: u32,
    /// Give up after this many consecutive failures.
    pub max_failures: u32,
}

impl Default for RestartSpec {
    fn default() -> Self {
        let p = RestartPolicy::default();
        RestartSpec {
            base_backoff_ms: p.base_backoff_ms,
            multiplier: p.multiplier,
            max_failures: p.max_failures,
        }
    }
}

impl RestartSpec {
    /// The runtime policy.
    pub fn to_policy(self) -> RestartPolicy {
        RestartPolicy {
            base_backoff_ms: self.base_backoff_ms,
            multiplier: self.multiplier,
            max_failures: self.max_failures,
        }
    }
}

/// A scenario's fault-injection timeline.
///
/// `FaultSpec::default()` injects nothing; specs without faults serialize
/// without a `fault` key, so pre-chaos spec files and golden fixtures stay
/// valid byte for byte.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The fault timeline (empty = no chaos).
    #[serde(default)]
    pub events: Vec<FaultEvent>,
    /// Autopilot restart policy for every service on the box.
    #[serde(default)]
    pub restart: RestartSpec,
}

impl FaultSpec {
    /// True when no fault ever fires.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Structural checks that do not need the surrounding scenario.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_shape(&self) -> Result<(), String> {
        if self.is_empty() {
            return Ok(());
        }
        if self.restart.base_backoff_ms == 0 {
            return Err("restart base backoff must be at least 1 ms".into());
        }
        if self.restart.multiplier == 0 {
            return Err("restart multiplier must be at least 1".into());
        }
        if self.restart.max_failures == 0 {
            return Err("restart policy needs at least one allowed failure".into());
        }
        for ev in &self.events {
            match ev {
                FaultEvent::ConfigRollout {
                    key,
                    staged_pct,
                    rollback_p99_ms,
                    ..
                } => {
                    if key.is_empty() {
                        return Err("config rollout needs a non-empty document key".into());
                    }
                    if !(1..=100).contains(staged_pct) {
                        return Err(format!(
                            "config rollout stage must be in 1..=100 %, got {staged_pct}"
                        ));
                    }
                    if rollback_p99_ms == &Some(0) {
                        return Err("rollback threshold must be positive".into());
                    }
                }
                FaultEvent::ChurnStorm {
                    cycles, period_ms, ..
                } => {
                    if *cycles == 0 {
                        return Err("churn storm needs at least one cycle".into());
                    }
                    if *cycles > 64 {
                        return Err(format!("churn storm capped at 64 cycles, got {cycles}"));
                    }
                    if *period_ms == 0 {
                        return Err("churn storm period must be at least 1 ms".into());
                    }
                }
                FaultEvent::ConnectionFlood {
                    duration_ms,
                    extra_qps,
                    ..
                } => {
                    if *duration_ms == 0 {
                        return Err("connection flood duration must be at least 1 ms".into());
                    }
                    if *extra_qps == 0 {
                        return Err("connection flood needs at least 1 extra qps".into());
                    }
                }
                FaultEvent::QuotaExhaustion {
                    duration_ms,
                    tenant,
                    multiplier,
                    ..
                } => {
                    if *duration_ms == 0 {
                        return Err("quota exhaustion duration must be at least 1 ms".into());
                    }
                    if !indexserve::IO_TENANT_SERVICES.contains(&tenant.as_str()) {
                        return Err(format!(
                            "quota exhaustion tenant must be one of {:?}, got {tenant:?}",
                            indexserve::IO_TENANT_SERVICES
                        ));
                    }
                    if !multiplier.is_finite() || *multiplier <= 1.0 {
                        return Err(format!(
                            "quota exhaustion multiplier must be finite and > 1, got {multiplier}"
                        ));
                    }
                }
                FaultEvent::ControllerCrash { .. }
                | FaultEvent::SecondaryRestart { .. }
                | FaultEvent::BoxRestart { .. } => {}
            }
        }
        Ok(())
    }

    /// Compiles the timeline into the runtime plan the simulators execute.
    /// `effective` is the scenario's controller configuration (rollout
    /// documents apply their overrides on top of it). Returns `None` when
    /// the spec injects nothing.
    pub fn to_plan(&self, effective: Option<&PerfIsoConfig>) -> Option<FaultPlan> {
        if self.is_empty() {
            return None;
        }
        let mut faults = Vec::new();
        for ev in &self.events {
            // Churn storms expand into one planned fault per cycle; every
            // other event compiles 1:1.
            if let FaultEvent::ChurnStorm {
                at_ms,
                cycles,
                period_ms,
                downtime_ms,
            } = ev
            {
                for k in 0..*cycles {
                    faults.push(PlannedFault {
                        at: SimTime::from_millis(at_ms + k as u64 * period_ms),
                        kind: PlannedFaultKind::ServiceChurn {
                            downtime: SimDuration::from_millis(*downtime_ms),
                        },
                    });
                }
                continue;
            }
            faults.push(PlannedFault {
                at: SimTime::from_millis(ev.at_ms()),
                kind: match ev {
                    FaultEvent::ControllerCrash { downtime_polls, .. } => {
                        PlannedFaultKind::ControllerCrash {
                            downtime_polls: *downtime_polls,
                        }
                    }
                    FaultEvent::SecondaryRestart { downtime_ms, .. } => {
                        PlannedFaultKind::SecondaryRestart {
                            downtime: SimDuration::from_millis(*downtime_ms),
                        }
                    }
                    FaultEvent::BoxRestart { downtime_ms, .. } => PlannedFaultKind::BoxRestart {
                        downtime: SimDuration::from_millis(*downtime_ms),
                    },
                    FaultEvent::ConfigRollout {
                        key,
                        doc,
                        staged_pct,
                        rollback_p99_ms,
                        ..
                    } => PlannedFaultKind::ConfigRollout {
                        key: key.clone(),
                        config: Box::new(
                            doc.apply(effective.expect("validated: rollout needs a controller")),
                        ),
                        staged_pct: *staged_pct,
                        rollback_p99: rollback_p99_ms.map(SimDuration::from_millis),
                    },
                    FaultEvent::ConnectionFlood {
                        duration_ms,
                        extra_qps,
                        ..
                    } => PlannedFaultKind::ConnectionFlood {
                        duration: SimDuration::from_millis(*duration_ms),
                        extra_qps: *extra_qps,
                    },
                    FaultEvent::QuotaExhaustion {
                        duration_ms,
                        tenant,
                        multiplier,
                        ..
                    } => PlannedFaultKind::QuotaExhaustion {
                        duration: SimDuration::from_millis(*duration_ms),
                        tenant: tenant.clone(),
                        multiplier: *multiplier,
                    },
                    FaultEvent::ChurnStorm { .. } => unreachable!("expanded above"),
                },
            });
        }
        Some(FaultPlan {
            faults,
            restart: self.restart.to_policy(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_empty_and_compiles_to_no_plan() {
        let f = FaultSpec::default();
        assert!(f.is_empty());
        assert!(f.check_shape().is_ok());
        assert!(f.to_plan(None).is_none());
    }

    #[test]
    fn shape_checks_reject_degenerate_timelines() {
        let crash = FaultEvent::ControllerCrash {
            at_ms: 100,
            downtime_polls: 10,
        };
        let mut f = FaultSpec {
            events: vec![crash.clone()],
            restart: RestartSpec {
                base_backoff_ms: 0,
                ..Default::default()
            },
        };
        assert!(f.check_shape().is_err());
        f.restart = RestartSpec {
            multiplier: 0,
            ..Default::default()
        };
        assert!(f.check_shape().is_err());
        f.restart = RestartSpec {
            max_failures: 0,
            ..Default::default()
        };
        assert!(f.check_shape().is_err());
        let rollout = |staged_pct, key: &str, rb| FaultSpec {
            events: vec![FaultEvent::ConfigRollout {
                at_ms: 100,
                key: key.into(),
                doc: ControllerSpec::default(),
                staged_pct,
                rollback_p99_ms: rb,
            }],
            restart: RestartSpec::default(),
        };
        assert!(rollout(0, "k", None).check_shape().is_err());
        assert!(rollout(101, "k", None).check_shape().is_err());
        assert!(rollout(50, "", None).check_shape().is_err());
        assert!(rollout(50, "k", Some(0)).check_shape().is_err());
        assert!(rollout(50, "k", Some(5)).check_shape().is_ok());
    }

    #[test]
    fn plan_compilation_resolves_times_and_docs() {
        let base = PerfIsoConfig::paper_cluster();
        let f = FaultSpec {
            events: vec![
                FaultEvent::ControllerCrash {
                    at_ms: 500,
                    downtime_polls: 20,
                },
                FaultEvent::ConfigRollout {
                    at_ms: 700,
                    key: "perfiso".into(),
                    doc: ControllerSpec {
                        cpu_poll_interval_us: Some(5_000),
                        ..Default::default()
                    },
                    staged_pct: 100,
                    rollback_p99_ms: Some(20),
                },
            ],
            restart: RestartSpec {
                base_backoff_ms: 50,
                multiplier: 2,
                max_failures: 3,
            },
        };
        let plan = f.to_plan(Some(&base)).unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].at, SimTime::from_millis(500));
        assert_eq!(plan.restart.base_backoff_ms, 50);
        match &plan.faults[1].kind {
            PlannedFaultKind::ConfigRollout {
                config,
                rollback_p99,
                ..
            } => {
                assert_eq!(config.cpu_poll_interval, SimDuration::from_micros(5_000));
                assert_eq!(*rollback_p99, Some(SimDuration::from_millis(20)));
            }
            other => panic!("expected rollout, got {other:?}"),
        }
    }
}
