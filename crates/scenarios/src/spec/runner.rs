//! Executes a [`ScenarioSpec`] over its seeds and reduces the results.
//!
//! Repetitions fan out across worker threads with the same
//! work-stealing-by-atomic-index scheme as the fleet sweep: every seed is
//! an independent simulation, results are scattered back by seed index,
//! and the reduction runs serially in seed order — so the parallel report
//! is **bit-identical** to the serial one regardless of which worker
//! finishes first.

use std::sync::atomic::{AtomicUsize, Ordering};

use cluster::fleet::{effective_threads, run_fleet, FleetReport};
use cluster::{ClusterReport, ClusterSim};
use indexserve::boxsim::{run_multi, run_standalone, ServicePlan};
use indexserve::BoxReport;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use telemetry::RunStats;

use super::{ControllerSpec, ScenarioSpec, SpecError, TargetSpec};

/// Execution knobs that are not part of the experiment description.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Overrides the spec's repetition count.
    pub seeds: Option<u32>,
    /// Worker threads for the seed sweep: `0` = all available cores,
    /// `1` = serial. The report is bit-identical across thread counts.
    pub threads: usize,
}

impl RunOptions {
    /// Serial execution (tests, helpers returning a single report).
    pub fn serial() -> Self {
        RunOptions {
            seeds: None,
            threads: 1,
        }
    }

    /// All cores, with the given repetition override.
    pub fn parallel(seeds: Option<u32>) -> Self {
        RunOptions { seeds, threads: 0 }
    }
}

/// One seed's measurements, tagged by target kind.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SeedReport {
    /// A single-box run.
    SingleBox(BoxReport),
    /// A cluster run.
    Cluster(ClusterReport),
    /// A fleet sweep.
    Fleet(FleetReport),
}

impl SeedReport {
    /// The headline tail latency: query p99 (single box), end-to-end TLA
    /// p99 (cluster), or worst per-minute p99 (fleet).
    pub fn p99(&self) -> SimDuration {
        match self {
            SeedReport::SingleBox(r) => r.latency.p99,
            SeedReport::Cluster(r) => r.tla.p99,
            SeedReport::Fleet(r) => r.max_p99,
        }
    }

    /// Mean machine utilization over the measured window.
    pub fn utilization(&self) -> f64 {
        match self {
            SeedReport::SingleBox(r) => r.breakdown.utilization(),
            SeedReport::Cluster(r) => r.mean_utilization,
            SeedReport::Fleet(r) => r.mean_utilization,
        }
    }

    /// Dropped-query ratio (degraded-request ratio for clusters; fleets
    /// record no drops).
    pub fn drop_ratio(&self) -> f64 {
        match self {
            SeedReport::SingleBox(r) => r.drop_ratio(),
            SeedReport::Cluster(r) => {
                if r.completed == 0 {
                    0.0
                } else {
                    r.degraded as f64 / r.completed as f64
                }
            }
            SeedReport::Fleet(_) => 0.0,
        }
    }

    /// Secondary progress: batch CPU seconds (single box and cluster) or
    /// trainer minibatches per machine-minute (fleet).
    pub fn secondary_progress(&self) -> f64 {
        match self {
            SeedReport::SingleBox(r) => r.secondary_cpu.as_secs_f64(),
            SeedReport::Cluster(r) => r.breakdown.secondary.as_secs_f64(),
            SeedReport::Fleet(r) => r.trainer_progress.overall_mean(),
        }
    }

    /// The single-box report, if this seed ran one.
    pub fn as_single_box(&self) -> Option<&BoxReport> {
        match self {
            SeedReport::SingleBox(r) => Some(r),
            _ => None,
        }
    }

    /// The cluster report, if this seed ran one.
    pub fn as_cluster(&self) -> Option<&ClusterReport> {
        match self {
            SeedReport::Cluster(r) => Some(r),
            _ => None,
        }
    }

    /// The fleet report, if this seed ran one.
    pub fn as_fleet(&self) -> Option<&FleetReport> {
        match self {
            SeedReport::Fleet(r) => Some(r),
            _ => None,
        }
    }
}

/// Cross-seed statistics (the paper reports mean ± CI over 8 runs).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Headline p99 per seed, in milliseconds.
    pub p99_ms: RunStats,
    /// Machine utilization per seed, in `[0, 1]`.
    pub utilization: RunStats,
    /// Drop (or degraded-request) ratio per seed.
    pub drop_ratio: RunStats,
    /// Secondary progress per seed (see
    /// [`SeedReport::secondary_progress`] for units).
    pub secondary_progress: RunStats,
}

/// The unified result of running one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// The spec that ran (embedded so a report file is self-describing).
    pub spec: ScenarioSpec,
    /// The seeds, in reduction order; `runs[i]` used `seeds[i]`.
    pub seeds: Vec<u64>,
    /// Per-seed reports, in seed order.
    pub runs: Vec<SeedReport>,
    /// Cross-seed statistics.
    pub summary: Summary,
}

impl Report {
    /// Per-seed single-box reports (empty for other targets).
    pub fn box_reports(&self) -> Vec<&BoxReport> {
        self.runs
            .iter()
            .filter_map(SeedReport::as_single_box)
            .collect()
    }

    /// Per-seed cluster reports (empty for other targets).
    pub fn cluster_reports(&self) -> Vec<&ClusterReport> {
        self.runs
            .iter()
            .filter_map(SeedReport::as_cluster)
            .collect()
    }

    /// Per-seed fleet reports (empty for other targets).
    pub fn fleet_reports(&self) -> Vec<&FleetReport> {
        self.runs.iter().filter_map(SeedReport::as_fleet).collect()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

/// Runs `n` independent jobs across `workers` threads (work-stealing by
/// atomic index) and returns the results in job order. With one worker
/// the jobs run inline; either way `results[i]` is `job(i)`, so callers'
/// reductions are bit-identical across thread counts.
fn fan_out<T: Send>(n: usize, workers: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    if workers <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(job(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let job = &job;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= n {
                                break;
                            }
                            out.push((idx, job(idx)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (idx, r) in handle.join().expect("sweep worker panicked") {
                    results[idx] = Some(r);
                }
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

/// Reduces per-seed reports into cross-seed statistics, in input order.
fn summarize(runs: &[SeedReport]) -> Summary {
    let mut summary = Summary::default();
    for r in runs {
        summary.p99_ms.add(r.p99().as_millis_f64());
        summary.utilization.add(r.utilization());
        summary.drop_ratio.add(r.drop_ratio());
        summary.secondary_progress.add(r.secondary_progress());
    }
    summary
}

/// Runs one seed of the scenario.
fn run_seed(spec: &ScenarioSpec, seed: u64, inner_threads: usize) -> SeedReport {
    match &spec.target {
        TargetSpec::SingleBox { .. } => {
            let plan = spec.run_plan().expect("validated");
            let cfg = spec.box_config(seed).expect("validated");
            SeedReport::SingleBox(run_standalone(cfg, &plan))
        }
        TargetSpec::MultiBox { services } => {
            let cfg = spec.box_config(seed).expect("validated");
            let scale = spec.run_scale();
            let plans: Vec<ServicePlan> = services
                .iter()
                .map(|s| ServicePlan::at_qps(s.qps))
                .collect();
            SeedReport::SingleBox(run_multi(cfg, &plans, scale.warmup, scale.measure))
        }
        TargetSpec::Cluster { .. } => {
            let cfg = spec.cluster_config(seed, inner_threads).expect("validated");
            SeedReport::Cluster(ClusterSim::new(cfg).run())
        }
        TargetSpec::Fleet { .. } => {
            let cfg = spec.fleet_config(seed, inner_threads).expect("validated");
            SeedReport::Fleet(run_fleet(&cfg))
        }
    }
}

/// Runs the scenario over its seeds, in parallel when `opts.threads`
/// allows, and reduces the per-seed reports in seed order.
///
/// Parallel and serial execution produce bit-identical reports: seeds
/// never observe each other, and the floating-point reduction happens in
/// one fixed order. When the seed sweep itself is parallel, the inner
/// cluster/fleet simulations run serially (their own parallelism is also
/// bit-identical, so this only affects wall-clock, never results).
///
/// # Errors
///
/// Fails if the spec does not validate.
pub fn run_spec(spec: &ScenarioSpec, opts: &RunOptions) -> Result<Report, SpecError> {
    spec.validate()?;
    if opts.seeds == Some(0) {
        // A `--seeds 0` override is the same mistake as `seeds: 0` in a
        // spec file; reject it rather than silently running one seed.
        return Err(SpecError::ZeroSeeds);
    }
    let seeds = spec.seed_list(opts.seeds);
    let n = seeds.len();
    let workers = effective_threads(opts.threads).min(n);
    // Avoid oversubscription: parallelize across seeds *or* inside the
    // one simulation, never both.
    let inner_threads = if workers > 1 { 1 } else { opts.threads };
    let runs = fan_out(n, workers, |idx| run_seed(spec, seeds[idx], inner_threads));
    let summary = summarize(&runs);
    Ok(Report {
        spec: spec.clone(),
        seeds,
        runs,
        summary,
    })
}

/// One sweep cell's results: the axis coordinates plus a full [`Report`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCellReport {
    /// Cell coordinates, `"key=value key=value"`.
    pub label: String,
    /// The axis coordinates as `(key, value)` pairs.
    pub params: Vec<(String, String)>,
    /// The merged controller overrides this cell ran with.
    pub controller: ControllerSpec,
    /// The cell's multi-seed report.
    pub report: Report,
}

/// One row of the cross-cell summary table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepRow {
    /// Cell coordinates.
    pub label: String,
    /// Mean headline p99 across seeds, in milliseconds.
    pub p99_ms_mean: f64,
    /// 95% confidence half-width of the p99, in milliseconds.
    pub p99_ms_ci95: f64,
    /// Mean machine utilization across seeds.
    pub utilization_mean: f64,
    /// Mean drop (or degraded-request) ratio across seeds.
    pub drop_ratio_mean: f64,
    /// Mean secondary progress across seeds (see
    /// [`SeedReport::secondary_progress`] for units).
    pub secondary_mean: f64,
}

/// The result of running a parameter sweep: per-cell reports plus the
/// cross-cell summary table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// The sweeping spec that ran (with its `sweep` intact, so a report
    /// file documents the whole grid).
    pub spec: ScenarioSpec,
    /// The seeds every cell ran, in reduction order.
    pub seeds: Vec<u64>,
    /// Per-cell reports, in grid (row-major) order.
    pub cells: Vec<SweepCellReport>,
    /// The cross-cell summary table, in grid order.
    pub table: Vec<SweepRow>,
}

impl SweepReport {
    /// Serializes the sweep report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep report is serializable")
    }
}

/// Expands the spec's sweep and runs every `(cell, seed)` pair, fanning
/// the flattened job list across the same worker scheme as [`run_spec`].
///
/// Jobs scatter back by index and both reductions (per-cell seed order,
/// then cell order) are fixed, so the sweep report is **bit-identical**
/// across thread counts, exactly like a single-cell run.
///
/// # Errors
///
/// Fails if the spec does not validate or declares no sweep.
pub fn run_sweep(spec: &ScenarioSpec, opts: &RunOptions) -> Result<SweepReport, SpecError> {
    if opts.seeds == Some(0) {
        return Err(SpecError::ZeroSeeds);
    }
    let cells = spec.expand_sweep()?;
    let seeds = spec.seed_list(opts.seeds);
    let (n_cells, n_seeds) = (cells.len(), seeds.len());
    let n_jobs = n_cells * n_seeds;
    let workers = effective_threads(opts.threads).min(n_jobs.max(1));
    let inner_threads = if workers > 1 { 1 } else { opts.threads };
    let results = fan_out(n_jobs, workers, |idx| {
        let (c, s) = (idx / n_seeds, idx % n_seeds);
        run_seed(&cells[c].spec, seeds[s], inner_threads)
    });

    let mut out = Vec::with_capacity(n_cells);
    let mut results = results.into_iter();
    for cell in cells {
        let runs: Vec<SeedReport> = results.by_ref().take(n_seeds).collect();
        let summary = summarize(&runs);
        out.push(SweepCellReport {
            label: cell.label,
            params: cell.params,
            controller: cell.spec.controller.clone(),
            report: Report {
                spec: cell.spec,
                seeds: seeds.clone(),
                runs,
                summary,
            },
        });
    }
    let table = out
        .iter()
        .map(|c| SweepRow {
            label: c.label.clone(),
            p99_ms_mean: c.report.summary.p99_ms.mean(),
            p99_ms_ci95: c.report.summary.p99_ms.ci95(),
            utilization_mean: c.report.summary.utilization.mean(),
            drop_ratio_mean: c.report.summary.drop_ratio.mean(),
            secondary_mean: c.report.summary.secondary_progress.mean(),
        })
        .collect();
    Ok(SweepReport {
        spec: spec.clone(),
        seeds,
        cells: out,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use workloads::BullyIntensity;

    fn tiny_spec(seeds: u32) -> ScenarioSpec {
        ScenarioSpec::builder("tiny")
            .single_box(1_000.0)
            .cpu_bully(BullyIntensity::Mid)
            .policy(Policy::Blind { buffer_cores: 8 })
            .custom_scale(150, 350)
            .seed(5)
            .seeds(seeds)
            .build()
            .unwrap()
    }

    #[test]
    fn multi_seed_report_has_one_run_per_seed() {
        let report = run_spec(&tiny_spec(3), &RunOptions::serial()).unwrap();
        assert_eq!(report.seeds, vec![5, 6, 7]);
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.summary.p99_ms.len(), 3);
        assert_eq!(report.box_reports().len(), 3);
        assert!(report.cluster_reports().is_empty());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let spec = tiny_spec(4);
        let serial = run_spec(&spec, &RunOptions::serial()).unwrap();
        let parallel = run_spec(
            &spec,
            &RunOptions {
                seeds: None,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(serial.seeds, parallel.seeds);
        for (a, b) in serial.runs.iter().zip(parallel.runs.iter()) {
            let (a, b) = (a.as_single_box().unwrap(), b.as_single_box().unwrap());
            assert_eq!(a.latency.p50, b.latency.p50);
            assert_eq!(a.latency.p99, b.latency.p99);
            assert_eq!(a.latency.count, b.latency.count);
            assert_eq!(a.machine, b.machine);
            assert_eq!(
                a.breakdown.utilization().to_bits(),
                b.breakdown.utilization().to_bits()
            );
        }
        for (a, b) in [
            (&serial.summary.p99_ms, &parallel.summary.p99_ms),
            (&serial.summary.utilization, &parallel.summary.utilization),
        ] {
            assert_eq!(a.values().len(), b.values().len());
            for (x, y) in a.values().iter().zip(b.values().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn seeds_override_wins() {
        let report = run_spec(&tiny_spec(1), &RunOptions::parallel(Some(2))).unwrap();
        assert_eq!(report.runs.len(), 2);
    }

    fn tiny_sweep_spec() -> ScenarioSpec {
        let mut spec = tiny_spec(2);
        spec.sweep = Some(crate::spec::SweepSpec {
            axes: vec![
                crate::spec::SweepAxis::CpuPollIntervalUs(vec![1_000, 20_000]),
                crate::spec::SweepAxis::BufferCores(vec![2, 8]),
            ],
        });
        spec
    }

    #[test]
    fn sweep_produces_one_report_per_cell() {
        let spec = tiny_sweep_spec();
        let sweep = run_sweep(&spec, &RunOptions::serial()).unwrap();
        assert_eq!(sweep.cells.len(), 4);
        assert_eq!(sweep.table.len(), 4);
        assert_eq!(sweep.seeds, vec![5, 6]);
        for cell in &sweep.cells {
            assert_eq!(cell.report.runs.len(), 2);
            assert_eq!(cell.report.summary.p99_ms.len(), 2);
            assert!(cell.report.spec.sweep.is_none());
        }
        // The knobs really differ across cells.
        assert_eq!(sweep.cells[0].controller.buffer_cores, Some(2));
        assert_eq!(sweep.cells[1].controller.buffer_cores, Some(8));
        assert_eq!(sweep.cells[3].controller.cpu_poll_interval_us, Some(20_000));
        // run_sweep without a sweep is an error.
        assert!(matches!(
            run_sweep(&tiny_spec(1), &RunOptions::serial()),
            Err(SpecError::InvalidSweep(_))
        ));
    }

    #[test]
    fn parallel_sweep_grid_is_bit_identical_to_serial() {
        let spec = tiny_sweep_spec();
        let serial = run_sweep(
            &spec,
            &RunOptions {
                seeds: None,
                threads: 1,
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &spec,
            &RunOptions {
                seeds: None,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(parallel.cells.iter()) {
            assert_eq!(a.label, b.label);
            for (x, y) in a.report.runs.iter().zip(b.report.runs.iter()) {
                let (x, y) = (x.as_single_box().unwrap(), y.as_single_box().unwrap());
                assert_eq!(x.latency.p99, y.latency.p99);
                assert_eq!(x.latency.count, y.latency.count);
                assert_eq!(x.machine, y.machine);
            }
        }
        for (a, b) in serial.table.iter().zip(parallel.table.iter()) {
            assert_eq!(a.p99_ms_mean.to_bits(), b.p99_ms_mean.to_bits());
            assert_eq!(a.utilization_mean.to_bits(), b.utilization_mean.to_bits());
        }
        // The sweep report itself round-trips through JSON.
        let text = serial.to_json();
        let back: SweepReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.cells.len(), serial.cells.len());
        assert_eq!(back.spec, serial.spec);
        assert_eq!(
            back.table[0].p99_ms_mean.to_bits(),
            serial.table[0].p99_ms_mean.to_bits()
        );
    }

    #[test]
    fn sweep_cells_actually_change_behaviour() {
        // One axis that changes the machine: buffer cores 1 vs 16 under a
        // heavy bully shifts how much CPU the secondary gets.
        let mut spec = tiny_spec(1);
        spec.sweep = Some(crate::spec::SweepSpec::one(
            crate::spec::SweepAxis::BufferCores(vec![1, 16]),
        ));
        let sweep = run_sweep(&spec, &RunOptions::serial()).unwrap();
        let few = sweep.cells[0].report.runs[0].secondary_progress();
        let many = sweep.cells[1].report.runs[0].secondary_progress();
        assert!(
            few > many,
            "16 buffer cores should leave the bully less CPU than 1 \
             (got {few} vs {many} cpu-s)"
        );
    }
}
