//! Spec-expressible controller knobs and parameter sweeps.
//!
//! [`ControllerSpec`] makes every [`PerfIsoConfig`] knob — the poll
//! intervals, buffer-core count, memory watermarks, egress cap, and
//! per-tenant I/O limits — declarative: a spec carries *overrides* that
//! are applied on top of whatever base configuration its
//! [`Policy`](crate::Policy) produces, so `"policy": "FullPerfIso"` plus
//! `"cpu_poll_interval_us": 5000` means "the production controller, but
//! polling at 5 ms". Overrides validate through
//! [`PerfIsoConfig::validate`] at spec-validation time, so a bad knob is a
//! [`SpecError`](super::SpecError) long before a simulator is built.
//!
//! [`SweepSpec`] turns one scenario into a grid: each [`SweepAxis`] names
//! a knob and the values to try, and the cross product expands into one
//! cell per combination (first axis slowest, row-major), each cell being a
//! full [`ScenarioSpec`] with the corresponding controller overrides
//! merged in. `run --sweep` in `perfiso-run` executes every cell over
//! every seed and emits per-cell reports plus a cross-cell summary table.

use perfiso::{CpuPolicy, IoLimit, PerfIsoConfig, TenantLimitConfig};
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use super::ScenarioSpec;

/// Grid-size cap: a sweep larger than this is almost certainly a typo
/// (e.g. a microseconds value in a milliseconds axis).
pub const MAX_SWEEP_CELLS: usize = 1_024;

/// A static I/O limit override for one named secondary tenant.
///
/// Setting neither cap *removes* the base configuration's limit for this
/// service (an explicit "uncap hdfs-client" cell in a sweep).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantLimitSpec {
    /// Service name as registered with Autopilot ("hdfs-client", ...).
    pub service: String,
    /// Bandwidth cap in MB/s (`None` = no bandwidth cap).
    pub mbps: Option<u64>,
    /// Operations cap in IOPS (`None` = no IOPS cap).
    pub iops: Option<u64>,
}

impl TenantLimitSpec {
    /// The concrete limit, or `None` when this entry removes the limit.
    pub fn to_limit(&self) -> Option<IoLimit> {
        if self.mbps.is_none() && self.iops.is_none() {
            return None;
        }
        Some(IoLimit {
            bytes_per_sec: self.mbps.map(|m| m << 20),
            iops: self.iops,
        })
    }
}

/// Declarative overrides over the policy's base [`PerfIsoConfig`].
///
/// Every field is optional; `ControllerSpec::default()` changes nothing.
/// Overrides are applied by [`ControllerSpec::apply`] and validated (via
/// [`PerfIsoConfig::validate`]) by
/// [`ScenarioSpec::validate`](super::ScenarioSpec::validate).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerSpec {
    /// Buffer-core count for blind isolation (§4.1; requires a policy
    /// whose CPU mechanism is [`CpuPolicy::Blind`]).
    pub buffer_cores: Option<u32>,
    /// CPU poll interval (the 1 ms tight loop, §4.1), in microseconds.
    pub cpu_poll_interval_us: Option<u64>,
    /// I/O controller period (DWRR evaluation), in microseconds.
    pub io_poll_interval_us: Option<u64>,
    /// Memory watchdog period, in microseconds.
    pub memory_poll_interval_us: Option<u64>,
    /// Secondary memory footprint cap, in MiB.
    pub secondary_memory_limit_mb: Option<u64>,
    /// Kill secondaries when machine memory use exceeds this fraction of
    /// total, in `(0, 1]`.
    pub memory_kill_watermark: Option<f64>,
    /// Egress cap for secondary (low-class) traffic, in MB/s.
    pub egress_low_mbps: Option<u64>,
    /// Per-tenant static I/O limit overrides, matched by service name
    /// against the base configuration (replace or append; an empty limit
    /// removes the base entry).
    pub tenant_limits: Vec<TenantLimitSpec>,
}

impl ControllerSpec {
    /// True when no knob is overridden (the spec runs the policy's base
    /// configuration untouched).
    pub fn is_default(&self) -> bool {
        *self == ControllerSpec::default()
    }

    /// The base configuration with every override applied.
    pub fn apply(&self, base: &PerfIsoConfig) -> PerfIsoConfig {
        let mut cfg = base.clone();
        if let Some(b) = self.buffer_cores {
            if matches!(cfg.cpu, CpuPolicy::Blind { .. }) {
                cfg.cpu = CpuPolicy::Blind { buffer_cores: b };
            }
        }
        if let Some(us) = self.cpu_poll_interval_us {
            cfg.cpu_poll_interval = SimDuration::from_micros(us);
        }
        if let Some(us) = self.io_poll_interval_us {
            cfg.io_poll_interval = SimDuration::from_micros(us);
        }
        if let Some(us) = self.memory_poll_interval_us {
            cfg.memory_poll_interval = SimDuration::from_micros(us);
        }
        if let Some(mb) = self.secondary_memory_limit_mb {
            cfg.secondary_memory_limit = Some(mb << 20);
        }
        if let Some(w) = self.memory_kill_watermark {
            cfg.memory_kill_watermark = w;
        }
        if let Some(mbps) = self.egress_low_mbps {
            cfg.egress_low_rate = Some(mbps << 20);
        }
        for t in &self.tenant_limits {
            cfg.tenant_limits.retain(|e| e.service != t.service);
            if let Some(limit) = t.to_limit() {
                cfg.tenant_limits.push(TenantLimitConfig {
                    service: t.service.clone(),
                    limit,
                });
            }
        }
        cfg
    }

    /// The overridden knobs as `(key, value)` pairs, for labels and the
    /// `show` grid.
    pub fn overrides(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut push = |k: &str, v: Option<String>| {
            if let Some(v) = v {
                out.push((k.to_string(), v));
            }
        };
        push("buffer_cores", self.buffer_cores.map(|v| v.to_string()));
        push(
            "cpu_poll_us",
            self.cpu_poll_interval_us.map(|v| v.to_string()),
        );
        push(
            "io_poll_us",
            self.io_poll_interval_us.map(|v| v.to_string()),
        );
        push(
            "mem_poll_us",
            self.memory_poll_interval_us.map(|v| v.to_string()),
        );
        push(
            "secondary_mem_mb",
            self.secondary_memory_limit_mb.map(|v| v.to_string()),
        );
        push(
            "kill_watermark",
            self.memory_kill_watermark.map(|v| v.to_string()),
        );
        push(
            "egress_low_mbps",
            self.egress_low_mbps.map(|v| v.to_string()),
        );
        for t in &self.tenant_limits {
            let v = match (t.mbps, t.iops) {
                (None, None) => "uncapped".to_string(),
                (Some(m), None) => format!("{m}MB/s"),
                (None, Some(i)) => format!("{i}iops"),
                (Some(m), Some(i)) => format!("{m}MB/s+{i}iops"),
            };
            out.push((format!("io[{}]", t.service), v));
        }
        out
    }
}

/// One sweep dimension: a controller knob and the values to try.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Buffer-core counts for blind isolation.
    BufferCores(Vec<u32>),
    /// CPU poll intervals, in microseconds.
    CpuPollIntervalUs(Vec<u64>),
    /// I/O controller periods, in microseconds.
    IoPollIntervalUs(Vec<u64>),
    /// Memory watchdog periods, in microseconds.
    MemoryPollIntervalUs(Vec<u64>),
    /// Secondary memory caps, in MiB.
    SecondaryMemoryLimitMb(Vec<u64>),
    /// Memory kill watermarks, in `(0, 1]`.
    MemoryKillWatermark(Vec<f64>),
    /// Egress caps for low-class traffic, in MB/s.
    EgressLowMbps(Vec<u64>),
    /// Bandwidth caps for one named tenant, in MB/s.
    TenantIoMbps {
        /// Service name matched against the base tenant limits.
        service: String,
        /// Bandwidth caps to try.
        mbps: Vec<u64>,
    },
    /// Controller-crash downtimes, in CPU-poll periods: each cell rewrites
    /// the `downtime_polls` of every `ControllerCrash` event in the
    /// scenario's fault timeline (applied by [`SweepSpec::expand`], not by
    /// [`SweepAxis::apply`], because it edits the fault spec rather than
    /// the controller overrides).
    FaultDowntimePolls(Vec<u32>),
}

impl SweepAxis {
    /// The axis key used in cell labels and tables.
    pub fn key(&self) -> String {
        match self {
            SweepAxis::BufferCores(_) => "buffer_cores".into(),
            SweepAxis::CpuPollIntervalUs(_) => "cpu_poll_us".into(),
            SweepAxis::IoPollIntervalUs(_) => "io_poll_us".into(),
            SweepAxis::MemoryPollIntervalUs(_) => "mem_poll_us".into(),
            SweepAxis::SecondaryMemoryLimitMb(_) => "secondary_mem_mb".into(),
            SweepAxis::MemoryKillWatermark(_) => "kill_watermark".into(),
            SweepAxis::EgressLowMbps(_) => "egress_low_mbps".into(),
            SweepAxis::TenantIoMbps { service, .. } => format!("io_mbps[{service}]"),
            SweepAxis::FaultDowntimePolls(_) => "fault_downtime_polls".into(),
        }
    }

    /// Number of values along this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::BufferCores(v) | SweepAxis::FaultDowntimePolls(v) => v.len(),
            SweepAxis::CpuPollIntervalUs(v)
            | SweepAxis::IoPollIntervalUs(v)
            | SweepAxis::MemoryPollIntervalUs(v)
            | SweepAxis::SecondaryMemoryLimitMb(v)
            | SweepAxis::EgressLowMbps(v) => v.len(),
            SweepAxis::MemoryKillWatermark(v) => v.len(),
            SweepAxis::TenantIoMbps { mbps, .. } => mbps.len(),
        }
    }

    /// True when the axis has no values (rejected by validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th value rendered for labels.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn value_label(&self, i: usize) -> String {
        match self {
            SweepAxis::BufferCores(v) | SweepAxis::FaultDowntimePolls(v) => v[i].to_string(),
            SweepAxis::CpuPollIntervalUs(v)
            | SweepAxis::IoPollIntervalUs(v)
            | SweepAxis::MemoryPollIntervalUs(v)
            | SweepAxis::SecondaryMemoryLimitMb(v)
            | SweepAxis::EgressLowMbps(v) => v[i].to_string(),
            SweepAxis::MemoryKillWatermark(v) => format!("{}", v[i]),
            SweepAxis::TenantIoMbps { mbps, .. } => mbps[i].to_string(),
        }
    }

    /// Writes the `i`-th value into `ctl`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn apply(&self, i: usize, ctl: &mut ControllerSpec) {
        match self {
            SweepAxis::BufferCores(v) => ctl.buffer_cores = Some(v[i]),
            SweepAxis::CpuPollIntervalUs(v) => ctl.cpu_poll_interval_us = Some(v[i]),
            SweepAxis::IoPollIntervalUs(v) => ctl.io_poll_interval_us = Some(v[i]),
            SweepAxis::MemoryPollIntervalUs(v) => ctl.memory_poll_interval_us = Some(v[i]),
            SweepAxis::SecondaryMemoryLimitMb(v) => ctl.secondary_memory_limit_mb = Some(v[i]),
            SweepAxis::MemoryKillWatermark(v) => ctl.memory_kill_watermark = Some(v[i]),
            SweepAxis::EgressLowMbps(v) => ctl.egress_low_mbps = Some(v[i]),
            SweepAxis::TenantIoMbps { service, mbps } => {
                ctl.tenant_limits.retain(|t| &t.service != service);
                ctl.tenant_limits.push(TenantLimitSpec {
                    service: service.clone(),
                    mbps: Some(mbps[i]),
                    iops: None,
                });
            }
            // Edits the fault timeline, not the controller overrides;
            // handled directly by `SweepSpec::expand`.
            SweepAxis::FaultDowntimePolls(_) => {}
        }
    }
}

/// A parameter grid over controller knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The sweep dimensions; the grid is their cross product.
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// A single-axis sweep.
    pub fn one(axis: SweepAxis) -> Self {
        SweepSpec { axes: vec![axis] }
    }

    /// Total number of grid cells (product of axis lengths).
    pub fn cell_count(&self) -> usize {
        self.axes
            .iter()
            .map(SweepAxis::len)
            .fold(1usize, |a, b| a.saturating_mul(b))
    }

    /// Structural checks that do not need the surrounding spec: non-empty
    /// axes with distinct keys and a bounded grid. Per-cell knob validity
    /// is checked by [`ScenarioSpec::validate`](super::ScenarioSpec) on
    /// every expanded cell.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_shape(&self) -> Result<(), String> {
        if self.axes.is_empty() {
            return Err("a sweep needs at least one axis".into());
        }
        for axis in &self.axes {
            if axis.is_empty() {
                return Err(format!("axis {} has no values", axis.key()));
            }
            if let SweepAxis::TenantIoMbps { service, .. } = axis {
                if service.is_empty() {
                    return Err("tenant I/O axis needs a service name".into());
                }
            }
        }
        let keys: std::collections::HashSet<String> =
            self.axes.iter().map(SweepAxis::key).collect();
        if keys.len() != self.axes.len() {
            return Err("sweep axes must target distinct knobs".into());
        }
        let cells = self.cell_count();
        if cells > MAX_SWEEP_CELLS {
            return Err(format!(
                "sweep expands to {cells} cells (max {MAX_SWEEP_CELLS})"
            ));
        }
        Ok(())
    }

    /// Expands the grid over `base` in row-major order (first axis
    /// slowest). Each cell is `base` with the axis values merged into its
    /// controller overrides and the sweep itself removed; callers validate
    /// the cells.
    pub fn expand(&self, base: &ScenarioSpec) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            let mut spec = base.clone();
            spec.sweep = None;
            let mut params = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(idx.iter()) {
                if let SweepAxis::FaultDowntimePolls(v) = axis {
                    for ev in &mut spec.fault.events {
                        if let super::FaultEvent::ControllerCrash { downtime_polls, .. } = ev {
                            *downtime_polls = v[i];
                        }
                    }
                } else {
                    axis.apply(i, &mut spec.controller);
                }
                params.push((axis.key(), axis.value_label(i)));
            }
            let label = params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            cells.push(SweepCell {
                label,
                params,
                spec,
            });
            // Odometer increment, last axis fastest.
            let mut pos = self.axes.len();
            loop {
                if pos == 0 {
                    return cells;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }
}

/// One expanded grid cell: a runnable spec plus its axis coordinates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Human-readable cell coordinates, `"key=value key=value"`.
    pub label: String,
    /// The axis coordinates as `(key, value)` pairs.
    pub params: Vec<(String, String)>,
    /// The fully-merged, sweep-free spec for this cell.
    pub spec: ScenarioSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_controller_changes_nothing() {
        let base = PerfIsoConfig::paper_cluster();
        let ctl = ControllerSpec::default();
        assert!(ctl.is_default());
        let applied = ctl.apply(&base);
        assert_eq!(applied.cpu, base.cpu);
        assert_eq!(applied.cpu_poll_interval, base.cpu_poll_interval);
        assert_eq!(applied.tenant_limits, base.tenant_limits);
        assert!(ctl.overrides().is_empty());
    }

    #[test]
    fn overrides_apply_on_top_of_base() {
        let ctl = ControllerSpec {
            buffer_cores: Some(4),
            cpu_poll_interval_us: Some(5_000),
            memory_kill_watermark: Some(0.8),
            secondary_memory_limit_mb: Some(2_048),
            egress_low_mbps: Some(50),
            tenant_limits: vec![
                TenantLimitSpec {
                    service: "hdfs-client".into(),
                    mbps: Some(10),
                    iops: None,
                },
                TenantLimitSpec {
                    service: "hdfs-replication".into(),
                    mbps: None,
                    iops: None,
                },
            ],
            ..Default::default()
        };
        let cfg = ctl.apply(&PerfIsoConfig::paper_cluster());
        assert_eq!(cfg.cpu, CpuPolicy::Blind { buffer_cores: 4 });
        assert_eq!(cfg.cpu_poll_interval, SimDuration::from_micros(5_000));
        assert_eq!(cfg.memory_kill_watermark, 0.8);
        assert_eq!(cfg.secondary_memory_limit, Some(2_048 << 20));
        assert_eq!(cfg.egress_low_rate, Some(50 << 20));
        // hdfs-client replaced, hdfs-replication removed.
        assert_eq!(cfg.tenant_limits.len(), 1);
        assert_eq!(cfg.tenant_limits[0].service, "hdfs-client");
        assert_eq!(cfg.tenant_limits[0].limit.bytes_per_sec, Some(10 << 20));
        assert!(cfg.validate(48).is_ok());
    }

    #[test]
    fn buffer_cores_override_leaves_non_blind_policies_alone() {
        let base = PerfIsoConfig {
            cpu: CpuPolicy::StaticCores(8),
            ..PerfIsoConfig::default()
        };
        let ctl = ControllerSpec {
            buffer_cores: Some(4),
            ..Default::default()
        };
        assert_eq!(ctl.apply(&base).cpu, CpuPolicy::StaticCores(8));
    }

    #[test]
    fn sweep_expands_row_major() {
        let sweep = SweepSpec {
            axes: vec![
                SweepAxis::CpuPollIntervalUs(vec![1_000, 5_000]),
                SweepAxis::BufferCores(vec![2, 4, 8]),
            ],
        };
        assert_eq!(sweep.cell_count(), 6);
        sweep.check_shape().unwrap();
        let base = ScenarioSpec::builder("sweep-test")
            .cpu_bully(workloads::BullyIntensity::Mid)
            .policy(crate::Policy::Blind { buffer_cores: 8 })
            .build()
            .unwrap();
        let cells = sweep.expand(&base);
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].label, "cpu_poll_us=1000 buffer_cores=2");
        assert_eq!(cells[2].label, "cpu_poll_us=1000 buffer_cores=8");
        assert_eq!(cells[3].label, "cpu_poll_us=5000 buffer_cores=2");
        for cell in &cells {
            assert!(cell.spec.sweep.is_none());
            cell.spec.validate().expect("cells validate");
        }
        assert_eq!(cells[5].spec.controller.buffer_cores, Some(8));
        assert_eq!(cells[5].spec.controller.cpu_poll_interval_us, Some(5_000));
    }

    #[test]
    fn shape_checks_reject_degenerate_sweeps() {
        assert!(SweepSpec { axes: vec![] }.check_shape().is_err());
        assert!(SweepSpec::one(SweepAxis::BufferCores(vec![]))
            .check_shape()
            .is_err());
        assert!(SweepSpec {
            axes: vec![
                SweepAxis::BufferCores(vec![1]),
                SweepAxis::BufferCores(vec![2]),
            ],
        }
        .check_shape()
        .is_err());
        assert!(SweepSpec::one(SweepAxis::TenantIoMbps {
            service: String::new(),
            mbps: vec![10],
        })
        .check_shape()
        .is_err());
        let huge = SweepSpec {
            axes: vec![
                SweepAxis::CpuPollIntervalUs((0..64).map(|i| 1_000 + i).collect()),
                SweepAxis::IoPollIntervalUs((0..64).map(|i| 1_000 + i).collect()),
            ],
        };
        assert!(huge.check_shape().is_err());
    }
}
