//! The unified, declarative experiment API.
//!
//! Every experiment in the workspace — a paper figure, an integration
//! test, a bench table, or an ad-hoc sweep — is described by one
//! [`ScenarioSpec`]: a workload (offered load + measurement window), a
//! secondary tenant mix, an isolation [`Policy`], and a [`TargetSpec`]
//! selecting the single-box driver, the 75-machine cluster, or the fleet
//! sweep. Specs are fully serde-serializable, so they round-trip through
//! JSON files and the `perfiso-run` CLI.
//!
//! The pieces:
//!
//! - [`ScenarioSpec::builder`] — typed construction with validation
//!   ([`SpecError`]) at [`ScenarioBuilder::build`] time.
//! - [`registry`] — the named paper scenarios (`fig04`–`fig10`,
//!   `quickstart`, `io-throttle`, …).
//! - [`run_spec`] — executes a spec over one or more seeds, fanning the
//!   repetitions out across worker threads exactly like the fleet sweep
//!   fans out slices; the parallel report is bit-identical to the serial
//!   one because every seed is an independent simulation and the
//!   reduction runs in seed order.
//! - [`Report`] — the unified result envelope (per-seed reports plus
//!   cross-seed [`telemetry::RunStats`]), JSON-serializable via the
//!   vendored serde.
//!
//! Embedding experiments (the ops kill-switch example, the diagnostic
//! probes) obtain their simulators through [`ScenarioSpec::box_sim`] /
//! [`ScenarioSpec::cluster_sim`] so that even manually-driven runs share
//! the one description of "what is on the machine".
//!
//! # Examples
//!
//! ```
//! use scenarios::spec::{self, RunOptions, ScenarioSpec};
//! use scenarios::Policy;
//!
//! let spec = ScenarioSpec::builder("demo")
//!     .single_box(1_000.0)
//!     .cpu_bully(workloads::BullyIntensity::High)
//!     .policy(Policy::Blind { buffer_cores: 8 })
//!     .custom_scale(200, 400)
//!     .build()
//!     .unwrap();
//! let report = spec::run_spec(&spec, &RunOptions::serial()).unwrap();
//! assert_eq!(report.runs.len(), 1);
//! ```

mod controller;
mod fault;
mod graph;
mod registry;
mod resilience;
mod runner;

pub use controller::{
    ControllerSpec, SweepAxis, SweepCell, SweepSpec, TenantLimitSpec, MAX_SWEEP_CELLS,
};
pub use fault::{FaultEvent, FaultSpec, RestartSpec};
pub use graph::{EdgeSpec, ServiceGraphSpec, StageSpec, WorkloadSpec};
pub use registry::{named, names, registry};
pub use resilience::{AdmissionSpec, BreakerSpec, HedgeSpec, ResilienceSpec, RetrySpec};
pub use runner::{
    run_spec, run_sweep, Report, RunOptions, SeedReport, Summary, SweepCellReport, SweepReport,
    SweepRow,
};

use perfiso::{CpuPolicy, PerfIsoConfig};

use cluster::fleet::FleetConfig;
use cluster::{BoxShape, ClusterConfig, ClusterSim, Topology};
use indexserve::boxsim::RunPlan;
use indexserve::tags::MAX_SERVICES;
use indexserve::{BoxConfig, BoxSim, HostedSpec, SecondaryKind, ServiceConfig};
use qtrace::{DiurnalCurve, OpenLoopClient, TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use workloads::{BullyIntensity, DiskBully, MlTrainer};

use crate::singlebox::Scale;
use crate::Policy;

/// Paper-server core count, used by policy validation.
const PAPER_CORES: u32 = 48;

/// Paper-server physical memory in megabytes, used by roster validation.
const PAPER_MEMORY_MB: u64 = 128 * 1024;

/// Megabytes reserved for the secondary tenants when sizing a roster.
const SECONDARY_RESERVE_MB: u64 = 2 * 1024;

/// Why a spec is not runnable.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Scenario names must be non-empty, without whitespace.
    InvalidName(String),
    /// Offered load must be positive and finite.
    InvalidQps(f64),
    /// At least one seed repetition is required.
    ZeroSeeds,
    /// The measurement window is degenerate.
    InvalidScale(String),
    /// The policy parameters are out of range for the paper server.
    InvalidPolicy(String),
    /// The cluster topology is degenerate.
    InvalidTopology(String),
    /// The fleet sweep parameters are degenerate.
    InvalidFleet(String),
    /// The controller-knob overrides are out of range or target the wrong
    /// policy.
    InvalidController(String),
    /// The parameter sweep is degenerate or expands to an invalid cell.
    InvalidSweep(String),
    /// `Policy::Standalone` means "primary alone": no secondary allowed.
    StandaloneWithSecondary,
    /// Fleet runs colocate the ML trainer; extra secondaries are not
    /// supported by the sweep driver.
    FleetSecondaryUnsupported,
    /// Fleet runs require an installed controller (the sweep measures
    /// colocation under isolation, not the no-isolation baseline).
    FleetNeedsController,
    /// A helper was called on the wrong target kind.
    TargetMismatch {
        /// What the helper needed.
        expected: &'static str,
        /// What the spec declared.
        found: &'static str,
    },
    /// The fault-injection timeline is degenerate or targets components
    /// the scenario does not run.
    InvalidFault(String),
    /// The primary workload declaration (service graph or multi-box
    /// roster) is malformed or incompatible with the target.
    InvalidWorkload(String),
    /// The overload-resilience policy is degenerate or incompatible with
    /// the workload.
    InvalidResilience(String),
    /// No scenario with this name in the registry.
    UnknownScenario(String),
    /// A JSON spec file failed to load or parse.
    InvalidSpecFile(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::InvalidName(n) => {
                write!(
                    f,
                    "invalid scenario name {n:?}: must be non-empty, no whitespace"
                )
            }
            SpecError::InvalidQps(q) => write!(f, "offered load must be positive, got {q}"),
            SpecError::ZeroSeeds => write!(f, "at least one seed repetition is required"),
            SpecError::InvalidScale(m) => write!(f, "invalid scale: {m}"),
            SpecError::InvalidPolicy(m) => write!(f, "invalid policy: {m}"),
            SpecError::InvalidTopology(m) => write!(f, "invalid topology: {m}"),
            SpecError::InvalidFleet(m) => write!(f, "invalid fleet parameters: {m}"),
            SpecError::InvalidController(m) => write!(f, "invalid controller overrides: {m}"),
            SpecError::InvalidSweep(m) => write!(f, "invalid sweep: {m}"),
            SpecError::StandaloneWithSecondary => {
                write!(
                    f,
                    "Policy::Standalone runs the primary alone; remove the secondary"
                )
            }
            SpecError::FleetSecondaryUnsupported => {
                write!(
                    f,
                    "fleet runs colocate the ML trainer; remove the extra secondary"
                )
            }
            SpecError::FleetNeedsController => {
                write!(f, "fleet runs need an isolation policy with a controller")
            }
            SpecError::TargetMismatch { expected, found } => {
                write!(
                    f,
                    "this operation needs a {expected} target, spec declares {found}"
                )
            }
            SpecError::InvalidFault(m) => write!(f, "invalid fault timeline: {m}"),
            SpecError::InvalidWorkload(m) => write!(f, "invalid workload: {m}"),
            SpecError::InvalidResilience(m) => write!(f, "invalid resilience policy: {m}"),
            SpecError::UnknownScenario(n) => write!(f, "unknown scenario {n:?} (try `list`)"),
            SpecError::InvalidSpecFile(m) => write!(f, "cannot load spec file: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Measurement-window selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScaleSpec {
    /// Short windows for tests (maps to [`Scale::quick`]).
    Quick,
    /// Bench windows, honouring `PERFISO_SCALE` (maps to [`Scale::bench`]).
    Bench,
    /// Explicit warm-up and measured window, in milliseconds.
    Custom {
        /// Warm-up excluded from statistics.
        warmup_ms: u64,
        /// Measured window.
        measure_ms: u64,
    },
}

impl ScaleSpec {
    /// The concrete run lengths.
    pub fn to_scale(self) -> Scale {
        match self {
            ScaleSpec::Quick => Scale::quick(),
            ScaleSpec::Bench => Scale::bench(),
            ScaleSpec::Custom {
                warmup_ms,
                measure_ms,
            } => Scale {
                warmup: SimDuration::from_millis(warmup_ms),
                measure: SimDuration::from_millis(measure_ms),
            },
        }
    }

    /// A custom scale from concrete run lengths (millisecond floor).
    pub fn from_scale(scale: Scale) -> Self {
        ScaleSpec::Custom {
            warmup_ms: scale.warmup.as_millis(),
            measure_ms: scale.measure.as_millis(),
        }
    }
}

/// The fleet load curve, by name.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CurveSpec {
    /// The paper's Fig 10 hour: drifting load with a mid-hour surge.
    PaperHour,
    /// A full 24-hour production day: early-morning trough, broad evening
    /// crest, morning-ramp and evening surges.
    ProductionDay,
    /// Constant per-machine load (control runs).
    Flat {
        /// QPS per machine.
        qps: f64,
    },
}

impl CurveSpec {
    /// The concrete curve.
    pub fn to_curve(self) -> DiurnalCurve {
        match self {
            CurveSpec::PaperHour => DiurnalCurve::paper_hour(),
            CurveSpec::ProductionDay => DiurnalCurve::production_day(),
            CurveSpec::Flat { qps } => DiurnalCurve::flat(qps),
        }
    }
}

/// Latency-recording backend selection: the exact recorder keeps every
/// sample (bit-stable percentiles, the historical default), the sketch
/// recorder keeps log-spaced bucket counters with a guaranteed relative
/// error ([`telemetry::sketch::RELATIVE_ERROR`]) and constant memory —
/// the only affordable choice at production fleet scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetrySpec {
    /// Keep every sample (exact percentiles).
    Exact,
    /// Mergeable log-bucketed percentile sketch (bounded memory).
    Sketch,
}

// The vendored serde_derive does not parse the `#[default]` variant
// attribute, so this cannot be `#[derive(Default)]`.
#[allow(clippy::derivable_impls)]
impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec::Exact
    }
}

impl TelemetrySpec {
    /// True for the default exact backend (serde skip predicate: the
    /// default is never serialized, keeping pre-sketch fixtures stable).
    pub fn is_exact(&self) -> bool {
        matches!(self, TelemetrySpec::Exact)
    }

    /// The concrete recorder mode.
    pub fn mode(&self) -> telemetry::TelemetryMode {
        match self {
            TelemetrySpec::Exact => telemetry::TelemetryMode::Exact,
            TelemetrySpec::Sketch => telemetry::TelemetryMode::Sketch,
        }
    }
}

/// Production-scale extensions of the fleet sweep: strided minutes (a
/// 24-hour day in 1440/stride slices), a heterogeneous hardware roster,
/// and deterministic tenant churn.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetProductionSpec {
    /// Wall minutes each sampled slice represents (≥ 1).
    pub minute_stride: u32,
    /// Cycle the sampled machines through the three-generation
    /// [`cluster::topology::BoxShape::production_shapes`] roster instead
    /// of the uniform paper server.
    pub heterogeneous_shapes: bool,
    /// Deterministically reschedule the batch trainer per machine-minute
    /// (evictions and 0.5–1.5× worker rescales).
    pub tenant_churn: bool,
}

/// One latency-sensitive service of a multi-primary box: its display
/// name, its own open-loop offered load, and its declared footprint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceLoadSpec {
    /// Service display name (report rows; unique within the roster).
    pub name: String,
    /// Offered load in queries/second.
    pub qps: f64,
    /// Declared resident working set, megabytes.
    pub working_set_mb: u64,
}

/// Which driver executes the scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TargetSpec {
    /// One production server ([`indexserve::boxsim::run_standalone`]).
    SingleBox {
        /// Offered load in queries/second.
        qps: f64,
    },
    /// One production server hosting several latency-sensitive services
    /// that PerfIso must arbitrate between
    /// ([`indexserve::boxsim::run_multi`]).
    MultiBox {
        /// The service roster, in slot order.
        services: Vec<ServiceLoadSpec>,
    },
    /// The Fig 9 TLA/MLA/IndexServe cluster ([`ClusterSim`]).
    Cluster {
        /// Index partitions per row.
        columns: u32,
        /// Replicated rows.
        rows: u32,
        /// Top-level aggregator machines.
        tlas: u32,
        /// Total offered load across the cluster.
        qps_total: f64,
    },
    /// The Fig 10 per-minute fleet sweep ([`cluster::fleet::run_fleet`]).
    Fleet {
        /// Extrapolated fleet size.
        fleet_machines: u32,
        /// Machines actually simulated per minute.
        sampled_machines: u32,
        /// Experiment length in minutes.
        minutes: u32,
        /// Per-minute DES slice, in milliseconds.
        slice_ms: u64,
        /// The load curve.
        curve: CurveSpec,
        /// The colocated ML trainer.
        trainer: MlTrainer,
        /// Production-scale extensions (absent in older spec files = the
        /// classic per-minute sweep; `None` is never serialized, keeping
        /// pre-production fleet fixtures byte-stable).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        production: Option<FleetProductionSpec>,
    },
}

impl TargetSpec {
    /// Short kind name for errors and tables.
    pub fn kind(&self) -> &'static str {
        match self {
            TargetSpec::SingleBox { .. } => "single-box",
            TargetSpec::MultiBox { .. } => "multi-box",
            TargetSpec::Cluster { .. } => "cluster",
            TargetSpec::Fleet { .. } => "fleet",
        }
    }

    /// One-line shape summary for tables.
    pub fn describe(&self) -> String {
        match self {
            TargetSpec::SingleBox { qps } => format!("single-box @ {qps:.0} qps"),
            TargetSpec::MultiBox { services } => {
                let roster: Vec<String> = services
                    .iter()
                    .map(|s| format!("{}@{:.0}", s.name, s.qps))
                    .collect();
                format!("multi-box [{}] qps", roster.join(" + "))
            }
            TargetSpec::Cluster {
                columns,
                rows,
                tlas,
                qps_total,
            } => format!("cluster {columns}x{rows}+{tlas} @ {qps_total:.0} qps"),
            TargetSpec::Fleet {
                fleet_machines,
                sampled_machines,
                minutes,
                slice_ms,
                ..
            } => format!(
                "fleet {fleet_machines} ({minutes} min x {sampled_machines}, {slice_ms} ms slices)"
            ),
        }
    }
}

/// One fully-described experiment.
///
/// See the [module docs](self) for the surrounding machinery; the
/// interesting invariants live in [`ScenarioSpec::validate`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (registry key, report label).
    pub name: String,
    /// Human-readable purpose.
    pub description: String,
    /// Which driver runs it, with its load.
    pub target: TargetSpec,
    /// The primary workload class (absent in older spec files =
    /// IndexServe; the default is never serialized, keeping pre-workload
    /// fixtures byte-stable).
    #[serde(default, skip_serializing_if = "WorkloadSpec::is_index_serve")]
    pub workload: WorkloadSpec,
    /// Secondary tenants on each simulated machine.
    pub secondary: SecondaryKind,
    /// The isolation policy under test.
    pub policy: Policy,
    /// Controller-knob overrides applied on top of the policy's base
    /// [`PerfIsoConfig`] (absent in older spec files = no overrides).
    #[serde(default)]
    pub controller: ControllerSpec,
    /// Optional parameter sweep expanding this scenario into a grid of
    /// cells (absent in older spec files = no sweep).
    #[serde(default)]
    pub sweep: Option<SweepSpec>,
    /// Fault-injection timeline (absent in older spec files = no chaos;
    /// empty timelines are not serialized, keeping old fixtures valid).
    #[serde(default, skip_serializing_if = "FaultSpec::is_empty")]
    pub fault: FaultSpec,
    /// Latency-recording backend (absent in older spec files = exact;
    /// the default is never serialized, keeping pre-sketch fixtures
    /// byte-stable).
    #[serde(default, skip_serializing_if = "TelemetrySpec::is_exact")]
    pub telemetry: TelemetrySpec,
    /// Overload-resilience policy (absent in older spec files = none; a
    /// disabled spec is never serialized, keeping pre-resilience fixtures
    /// byte-stable).
    #[serde(default, skip_serializing_if = "ResilienceSpec::is_disabled")]
    pub resilience: ResilienceSpec,
    /// Measurement window.
    pub scale: ScaleSpec,
    /// Base RNG seed; repetition `i` runs with `seed + i`.
    pub seed: u64,
    /// Seed repetitions (the paper runs cluster experiments 8 times).
    pub seeds: u32,
}

impl ScenarioSpec {
    /// Starts a builder with test-friendly defaults: single box at
    /// 2 000 QPS, no secondary, standalone policy, quick scale, seed 42,
    /// one repetition.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: name.to_string(),
                description: String::new(),
                target: TargetSpec::SingleBox { qps: 2_000.0 },
                workload: WorkloadSpec::IndexServe,
                secondary: SecondaryKind::none(),
                policy: Policy::Standalone,
                controller: ControllerSpec::default(),
                sweep: None,
                fault: FaultSpec::default(),
                telemetry: TelemetrySpec::default(),
                resilience: ResilienceSpec::default(),
                scale: ScaleSpec::Quick,
                seed: 42,
                seeds: 1,
            },
        }
    }

    /// Checks every invariant the drivers rely on.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() || self.name.chars().any(char::is_whitespace) {
            return Err(SpecError::InvalidName(self.name.clone()));
        }
        if self.seeds == 0 {
            return Err(SpecError::ZeroSeeds);
        }
        if let ScaleSpec::Custom { measure_ms, .. } = self.scale {
            if measure_ms == 0 {
                return Err(SpecError::InvalidScale("measured window is zero".into()));
            }
        }
        match self.policy {
            Policy::Blind { buffer_cores } if buffer_cores == 0 || buffer_cores >= PAPER_CORES => {
                return Err(SpecError::InvalidPolicy(format!(
                    "blind isolation needs 1..{PAPER_CORES} buffer cores, got {buffer_cores}"
                )));
            }
            Policy::StaticCores(n) if n == 0 || n > PAPER_CORES => {
                return Err(SpecError::InvalidPolicy(format!(
                    "static restriction needs 1..={PAPER_CORES} cores, got {n}"
                )));
            }
            Policy::CycleCap(f) if !(f > 0.0 && f <= 1.0) => {
                return Err(SpecError::InvalidPolicy(format!(
                    "cycle cap must be in (0, 1], got {f}"
                )));
            }
            Policy::Standalone if self.secondary != SecondaryKind::none() => {
                return Err(SpecError::StandaloneWithSecondary);
            }
            _ => {}
        }
        if !self.controller.is_default() {
            let Some(base) = self.policy.perfiso_config() else {
                return Err(SpecError::InvalidController(format!(
                    "controller overrides need a policy with a controller, not {}",
                    self.policy.label()
                )));
            };
            if self.controller.buffer_cores.is_some()
                && !matches!(base.cpu, CpuPolicy::Blind { .. })
            {
                return Err(SpecError::InvalidController(format!(
                    "buffer_cores override needs a blind-isolation policy, not {}",
                    self.policy.label()
                )));
            }
            let mut services = std::collections::HashSet::new();
            for t in &self.controller.tenant_limits {
                if !services.insert(t.service.as_str()) {
                    return Err(SpecError::InvalidController(format!(
                        "duplicate tenant limit override for {:?}",
                        t.service
                    )));
                }
                // A name the box never registers would be silently inert
                // and turn a sweep into identical cells — reject it.
                if !indexserve::boxsim::IO_TENANT_SERVICES.contains(&t.service.as_str()) {
                    return Err(SpecError::InvalidController(format!(
                        "unknown I/O tenant service {:?} (known: {})",
                        t.service,
                        indexserve::boxsim::IO_TENANT_SERVICES.join(", ")
                    )));
                }
            }
            self.controller
                .apply(&base)
                .validate(PAPER_CORES)
                .map_err(SpecError::InvalidController)?;
        }
        if !self.resilience.is_disabled() {
            self.resilience
                .check_shape()
                .map_err(SpecError::InvalidResilience)?;
            if self.resilience.hedge.is_some() {
                if let WorkloadSpec::ServiceGraph(g) = &self.workload {
                    // The hedge bit halves the per-stage worker-index
                    // space; a wider stage could not tag its hedges.
                    let cap = workloads::service_graph::MAX_HEDGED_FAN_OUT;
                    if let Some(s) = g.stages.iter().find(|s| s.fan_out > cap) {
                        return Err(SpecError::InvalidResilience(format!(
                            "hedging caps stage fan-out at {cap}; stage {:?} declares {}",
                            s.name, s.fan_out
                        )));
                    }
                }
            }
        }
        if !self.fault.is_empty() {
            self.fault.check_shape().map_err(SpecError::InvalidFault)?;
            if matches!(self.target, TargetSpec::Fleet { .. }) {
                return Err(SpecError::InvalidFault(
                    "the fleet sweep driver does not execute fault timelines".into(),
                ));
            }
            let effective = self.effective_perfiso();
            for ev in &self.fault.events {
                match ev {
                    FaultEvent::ControllerCrash { .. } if effective.is_none() => {
                        return Err(SpecError::InvalidFault(format!(
                            "controller crash needs a policy with a controller, not {}",
                            self.policy.label()
                        )));
                    }
                    FaultEvent::SecondaryRestart { .. }
                        if self.secondary == SecondaryKind::none() =>
                    {
                        return Err(SpecError::InvalidFault(
                            "secondary restart needs a secondary tenant".into(),
                        ));
                    }
                    FaultEvent::ChurnStorm { .. } if self.secondary == SecondaryKind::none() => {
                        return Err(SpecError::InvalidFault(
                            "churn storm needs a secondary tenant to churn".into(),
                        ));
                    }
                    FaultEvent::ConfigRollout { doc, .. } => {
                        let Some(base) = &effective else {
                            return Err(SpecError::InvalidFault(format!(
                                "config rollout needs a policy with a controller, not {}",
                                self.policy.label()
                            )));
                        };
                        // The rolled-out document must itself be a valid
                        // controller configuration.
                        doc.apply(base)
                            .validate(PAPER_CORES)
                            .map_err(|e| SpecError::InvalidFault(format!("rollout doc: {e}")))?;
                    }
                    _ => {}
                }
            }
        }
        if let Some(sweep) = &self.sweep {
            sweep.check_shape().map_err(SpecError::InvalidSweep)?;
            // A fault axis over a timeline with no controller crash would
            // expand into identical cells — reject it like an inert knob.
            if sweep
                .axes
                .iter()
                .any(|a| matches!(a, SweepAxis::FaultDowntimePolls(_)))
                && !self
                    .fault
                    .events
                    .iter()
                    .any(|e| matches!(e, FaultEvent::ControllerCrash { .. }))
            {
                return Err(SpecError::InvalidSweep(
                    "fault_downtime_polls axis needs a controller-crash fault event".into(),
                ));
            }
            for cell in sweep.expand(self) {
                cell.spec
                    .validate()
                    .map_err(|e| SpecError::InvalidSweep(format!("cell [{}]: {e}", cell.label)))?;
            }
        }
        if let WorkloadSpec::ServiceGraph(g) = &self.workload {
            g.check_shape().map_err(SpecError::InvalidWorkload)?;
            if !matches!(self.target, TargetSpec::SingleBox { .. }) {
                return Err(SpecError::InvalidWorkload(format!(
                    "service-graph workloads run on a single-box target, not {}",
                    self.target.kind()
                )));
            }
            if g.working_set_mb() + SECONDARY_RESERVE_MB > PAPER_MEMORY_MB {
                return Err(SpecError::InvalidWorkload(format!(
                    "graph working set {} MB leaves no room for secondaries on a \
                     {PAPER_MEMORY_MB} MB box",
                    g.working_set_mb()
                )));
            }
        }
        match &self.target {
            TargetSpec::SingleBox { qps } => {
                if !(qps.is_finite() && *qps > 0.0) {
                    return Err(SpecError::InvalidQps(*qps));
                }
            }
            TargetSpec::MultiBox { services } => {
                if !self.workload.is_index_serve() {
                    return Err(SpecError::InvalidWorkload(
                        "multi-box rosters host IndexServe services; graph workloads \
                         use a single-box target"
                            .into(),
                    ));
                }
                if services.is_empty() || services.len() > MAX_SERVICES {
                    return Err(SpecError::InvalidWorkload(format!(
                        "multi-box rosters host 1..={MAX_SERVICES} services, got {}",
                        services.len()
                    )));
                }
                let mut names = std::collections::HashSet::new();
                let mut total_mb = 0u64;
                for s in services {
                    if s.name.is_empty() || s.name.chars().any(char::is_whitespace) {
                        return Err(SpecError::InvalidWorkload(format!(
                            "service name {:?} must be non-empty, no whitespace",
                            s.name
                        )));
                    }
                    if !names.insert(s.name.as_str()) {
                        return Err(SpecError::InvalidWorkload(format!(
                            "duplicate service name {:?}",
                            s.name
                        )));
                    }
                    if !(s.qps.is_finite() && s.qps > 0.0) {
                        return Err(SpecError::InvalidQps(s.qps));
                    }
                    if s.working_set_mb == 0 {
                        return Err(SpecError::InvalidWorkload(format!(
                            "service {:?} declares an empty working set",
                            s.name
                        )));
                    }
                    total_mb += s.working_set_mb;
                }
                if total_mb + SECONDARY_RESERVE_MB > PAPER_MEMORY_MB {
                    return Err(SpecError::InvalidWorkload(format!(
                        "roster working sets total {total_mb} MB; with the secondary \
                         reserve that exceeds the {PAPER_MEMORY_MB} MB box"
                    )));
                }
            }
            TargetSpec::Cluster {
                columns,
                rows,
                tlas,
                qps_total,
            } => {
                if !(qps_total.is_finite() && *qps_total > 0.0) {
                    return Err(SpecError::InvalidQps(*qps_total));
                }
                let topo = Topology {
                    columns: *columns,
                    rows: *rows,
                    tlas: *tlas,
                };
                topo.validate().map_err(SpecError::InvalidTopology)?;
            }
            TargetSpec::Fleet {
                sampled_machines,
                minutes,
                slice_ms,
                curve,
                trainer,
                production,
                ..
            } => {
                if *minutes == 0 || *sampled_machines == 0 {
                    return Err(SpecError::InvalidFleet(
                        "need at least one minute and one sampled machine".into(),
                    ));
                }
                if *slice_ms == 0 {
                    return Err(SpecError::InvalidFleet("zero-length slice".into()));
                }
                if let Some(p) = production {
                    if p.minute_stride == 0 {
                        return Err(SpecError::InvalidFleet(
                            "minute_stride must be at least 1".into(),
                        ));
                    }
                }
                if let CurveSpec::Flat { qps } = curve {
                    if !(qps.is_finite() && *qps > 0.0) {
                        return Err(SpecError::InvalidQps(*qps));
                    }
                }
                if trainer.workers == 0 {
                    return Err(SpecError::InvalidFleet("trainer needs workers".into()));
                }
                if self.secondary != SecondaryKind::none() {
                    return Err(SpecError::FleetSecondaryUnsupported);
                }
                if self.policy.perfiso_config().is_none() {
                    return Err(SpecError::FleetNeedsController);
                }
            }
        }
        Ok(())
    }

    /// The concrete measurement window.
    pub fn run_scale(&self) -> Scale {
        self.scale.to_scale()
    }

    /// The controller configuration the drivers install: the policy's
    /// base [`PerfIsoConfig`] with this spec's [`ControllerSpec`]
    /// overrides applied (`None` when the policy runs no controller).
    pub fn effective_perfiso(&self) -> Option<PerfIsoConfig> {
        self.policy
            .perfiso_config()
            .map(|base| self.controller.apply(&base))
    }

    /// Expands this spec's sweep into its grid cells, in run order.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or when the spec declares no sweep.
    pub fn expand_sweep(&self) -> Result<Vec<SweepCell>, SpecError> {
        self.validate()?;
        let Some(sweep) = &self.sweep else {
            return Err(SpecError::InvalidSweep(format!(
                "scenario {:?} declares no sweep",
                self.name
            )));
        };
        Ok(sweep.expand(self))
    }

    /// The seeds a run covers: `seed..seed + repetitions`, optionally
    /// overriding the repetition count (the CLI's `--seeds`).
    pub fn seed_list(&self, override_seeds: Option<u32>) -> Vec<u64> {
        let n = override_seeds.unwrap_or(self.seeds).max(1);
        (0..n as u64).map(|i| self.seed.wrapping_add(i)).collect()
    }

    /// The single-box replay plan.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-single-box target.
    pub fn run_plan(&self) -> Result<RunPlan, SpecError> {
        self.validate()?;
        let TargetSpec::SingleBox { qps } = self.target else {
            return Err(SpecError::TargetMismatch {
                expected: "single-box",
                found: self.target.kind(),
            });
        };
        let scale = self.run_scale();
        Ok(RunPlan {
            qps,
            warmup: scale.warmup,
            measure: scale.measure,
            trace: TraceConfig::default(),
        })
    }

    /// The single-box machine configuration for one seed.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-single-box target.
    pub fn box_config(&self, seed: u64) -> Result<BoxConfig, SpecError> {
        self.validate()?;
        if !matches!(
            self.target,
            TargetSpec::SingleBox { .. } | TargetSpec::MultiBox { .. }
        ) {
            return Err(SpecError::TargetMismatch {
                expected: "single-box or multi-box",
                found: self.target.kind(),
            });
        }
        // validate() already guarantees a Standalone spec has no secondary.
        let effective = self.effective_perfiso();
        let fault = self
            .fault
            .to_plan(effective.as_ref())
            .map(std::sync::Arc::new);
        let mut cfg = BoxConfig::paper_box(self.secondary.clone(), effective, seed);
        cfg.fault = fault;
        cfg.hosted = self.hosted_roster()?;
        cfg.telemetry = self.telemetry.mode();
        cfg.resilience = self.resilience.to_policy();
        Ok(cfg)
    }

    /// The service roster [`box_config`](Self::box_config) installs:
    /// empty for the classic single-IndexServe box (bit-identical to the
    /// pre-roster driver), one graph slot for service-graph workloads,
    /// one sized IndexServe slot per [`ServiceLoadSpec`] for multi-box
    /// targets.
    fn hosted_roster(&self) -> Result<Vec<HostedSpec>, SpecError> {
        match (&self.target, &self.workload) {
            (TargetSpec::MultiBox { services }, _) => Ok(services
                .iter()
                .map(|s| HostedSpec::IndexServe {
                    name: s.name.clone(),
                    service: std::sync::Arc::new(ServiceConfig {
                        working_set_bytes: Some(s.working_set_mb << 20),
                        ..ServiceConfig::default()
                    }),
                })
                .collect()),
            (_, WorkloadSpec::ServiceGraph(g)) => Ok(vec![HostedSpec::Graph {
                name: "graph".to_string(),
                graph: std::sync::Arc::new(g.to_workload().map_err(SpecError::InvalidWorkload)?),
            }]),
            (_, WorkloadSpec::IndexServe) => Ok(Vec::new()),
        }
    }

    /// A live [`BoxSim`] for embedding-style experiments (runtime
    /// commands, manual stepping); the simulator is configured exactly as
    /// [`run_spec`] would configure it for this seed.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-single-box target.
    pub fn box_sim(&self, seed: u64) -> Result<BoxSim, SpecError> {
        Ok(BoxSim::new(self.box_config(seed)?))
    }

    /// An open-loop client replaying this spec's single-box workload —
    /// the same trace `run_spec` would generate for this seed.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-single-box target.
    pub fn open_loop_client(&self, seed: u64) -> Result<OpenLoopClient, SpecError> {
        let plan = self.run_plan()?;
        let total = plan.warmup + plan.measure;
        let n_queries = (plan.qps * total.as_secs_f64() * 1.05) as usize + 16;
        let trace = TraceGenerator::new(TraceConfig {
            queries: n_queries,
            ..plan.trace.clone()
        })
        .generate(seed ^ 0x7ACE);
        Ok(OpenLoopClient::new(trace, plan.qps, seed ^ 0xC1))
    }

    /// The cluster configuration for one seed.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-cluster target.
    pub fn cluster_config(&self, seed: u64, threads: usize) -> Result<ClusterConfig, SpecError> {
        self.validate()?;
        let TargetSpec::Cluster {
            columns,
            rows,
            tlas,
            qps_total,
        } = self.target
        else {
            return Err(SpecError::TargetMismatch {
                expected: "cluster",
                found: self.target.kind(),
            });
        };
        let scale = self.run_scale();
        let effective = self.effective_perfiso();
        Ok(ClusterConfig {
            topology: Topology {
                columns,
                rows,
                tlas,
            },
            qps_total,
            warmup: scale.warmup,
            measure: scale.measure,
            fault: self
                .fault
                .to_plan(effective.as_ref())
                .map(std::sync::Arc::new),
            perfiso: effective,
            threads,
            telemetry: self.telemetry.mode(),
            resilience: self.resilience.to_policy(),
            ..ClusterConfig::paper_cluster(self.secondary.clone(), seed)
        })
    }

    /// A live [`ClusterSim`] (diagnostics, traced runs).
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-cluster target.
    pub fn cluster_sim(&self, seed: u64, threads: usize) -> Result<ClusterSim, SpecError> {
        Ok(ClusterSim::new(self.cluster_config(seed, threads)?))
    }

    /// The fleet-sweep configuration for one seed.
    ///
    /// # Errors
    ///
    /// Fails on validation errors or a non-fleet target.
    pub fn fleet_config(&self, seed: u64, threads: usize) -> Result<FleetConfig, SpecError> {
        self.validate()?;
        let TargetSpec::Fleet {
            fleet_machines,
            sampled_machines,
            minutes,
            slice_ms,
            curve,
            ref trainer,
            production,
        } = self.target
        else {
            return Err(SpecError::TargetMismatch {
                expected: "fleet",
                found: self.target.kind(),
            });
        };
        // `PERFISO_SCALE` shrinks (or stretches) bench-scale fleet slices
        // the same way it scales single-box bench windows, so the full
        // production day stays affordable in CI.
        let slice_ms = if self.scale == ScaleSpec::Bench {
            ((slice_ms as f64 * crate::singlebox::scale_multiplier()) as u64).max(1)
        } else {
            slice_ms
        };
        Ok(FleetConfig {
            fleet_machines,
            sampled_machines,
            minutes,
            slice: SimDuration::from_millis(slice_ms),
            curve: curve.to_curve(),
            trainer: trainer.clone(),
            perfiso: self
                .effective_perfiso()
                .expect("validated: fleet policy has a controller"),
            seed,
            threads,
            minute_stride: production.map_or(1, |p| p.minute_stride),
            shapes: if production.is_some_and(|p| p.heterogeneous_shapes) {
                BoxShape::roster(&BoxShape::production_shapes())
            } else {
                FleetConfig::default().shapes
            },
            churn: production.is_some_and(|p| p.tenant_churn),
            telemetry: self.telemetry.mode(),
            resilience: self.resilience.to_policy(),
        })
    }

    /// Serializes the spec as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec is serializable")
    }

    /// Parses a spec from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or an invalid spec.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|e| SpecError::InvalidSpecFile(format!("{e:?}")))?;
        spec.validate()?;
        Ok(spec)
    }
}

/// Builder for [`ScenarioSpec`]; see [`ScenarioSpec::builder`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Sets the human-readable description.
    pub fn describe(mut self, description: &str) -> Self {
        self.spec.description = description.to_string();
        self
    }

    /// Targets one production server at the given load.
    pub fn single_box(mut self, qps: f64) -> Self {
        self.spec.target = TargetSpec::SingleBox { qps };
        self
    }

    /// Targets one production server hosting the given service roster.
    pub fn multi_box(mut self, services: Vec<ServiceLoadSpec>) -> Self {
        self.spec.target = TargetSpec::MultiBox { services };
        self
    }

    /// Appends one service to the multi-box roster (converting a
    /// single-box target into a multi-box one if needed).
    pub fn hosted_service(mut self, name: &str, qps: f64, working_set_mb: u64) -> Self {
        let entry = ServiceLoadSpec {
            name: name.to_string(),
            qps,
            working_set_mb,
        };
        match &mut self.spec.target {
            TargetSpec::MultiBox { services } => services.push(entry),
            _ => {
                self.spec.target = TargetSpec::MultiBox {
                    services: vec![entry],
                };
            }
        }
        self
    }

    /// Sets the primary workload class wholesale.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Runs a service-graph primary instead of IndexServe.
    pub fn graph(mut self, graph: ServiceGraphSpec) -> Self {
        self.spec.workload = WorkloadSpec::ServiceGraph(graph);
        self
    }

    /// Targets a TLA/MLA cluster of the given shape and total load.
    pub fn cluster(mut self, topology: Topology, qps_total: f64) -> Self {
        self.spec.target = TargetSpec::Cluster {
            columns: topology.columns,
            rows: topology.rows,
            tlas: topology.tlas,
            qps_total,
        };
        self
    }

    /// Targets the per-minute fleet sweep (paper-hour curve, default
    /// trainer and fleet size; refine with [`ScenarioBuilder::curve`] and
    /// [`ScenarioBuilder::trainer`]).
    pub fn fleet(mut self, minutes: u32, sampled_machines: u32, slice_ms: u64) -> Self {
        let defaults = FleetConfig::default();
        self.spec.target = TargetSpec::Fleet {
            fleet_machines: defaults.fleet_machines,
            sampled_machines,
            minutes,
            slice_ms,
            curve: CurveSpec::PaperHour,
            trainer: defaults.trainer,
            production: None,
        };
        self
    }

    /// Sets the extrapolated fleet size (fleet targets only; no-op
    /// otherwise).
    pub fn fleet_machines(mut self, n: u32) -> Self {
        if let TargetSpec::Fleet {
            ref mut fleet_machines,
            ..
        } = self.spec.target
        {
            *fleet_machines = n;
        }
        self
    }

    /// Enables the production-scale fleet extensions (fleet targets only;
    /// no-op otherwise).
    pub fn production(mut self, p: FleetProductionSpec) -> Self {
        if let TargetSpec::Fleet {
            ref mut production, ..
        } = self.spec.target
        {
            *production = Some(p);
        }
        self
    }

    /// Sets the fleet load curve (fleet targets only; no-op otherwise).
    pub fn curve(mut self, c: CurveSpec) -> Self {
        if let TargetSpec::Fleet { ref mut curve, .. } = self.spec.target {
            *curve = c;
        }
        self
    }

    /// Sets the colocated trainer (fleet targets only; no-op otherwise).
    pub fn trainer(mut self, t: MlTrainer) -> Self {
        if let TargetSpec::Fleet {
            ref mut trainer, ..
        } = self.spec.target
        {
            *trainer = t;
        }
        self
    }

    /// Sets the full secondary mix.
    pub fn secondary(mut self, secondary: SecondaryKind) -> Self {
        self.spec.secondary = secondary;
        self
    }

    /// Adds a CPU bully of the given intensity.
    pub fn cpu_bully(mut self, intensity: BullyIntensity) -> Self {
        self.spec.secondary.cpu_bully = Some(intensity);
        self
    }

    /// Adds a DiskSPD-style disk bully.
    pub fn disk_bully(mut self, bully: DiskBully) -> Self {
        self.spec.secondary.disk_bully = Some(bully);
        self
    }

    /// Adds HDFS DataNode + client traffic.
    pub fn hdfs(mut self) -> Self {
        self.spec.secondary.hdfs = true;
        self
    }

    /// Sets the isolation policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.spec.policy = policy;
        self
    }

    /// Sets the controller-knob overrides wholesale.
    pub fn controller(mut self, controller: ControllerSpec) -> Self {
        self.spec.controller = controller;
        self
    }

    /// Edits the controller-knob overrides in place.
    pub fn tune(mut self, f: impl FnOnce(&mut ControllerSpec)) -> Self {
        f(&mut self.spec.controller);
        self
    }

    /// Attaches a parameter sweep.
    pub fn sweep(mut self, sweep: SweepSpec) -> Self {
        self.spec.sweep = Some(sweep);
        self
    }

    /// Adds one sweep axis (creating the sweep if needed).
    pub fn sweep_axis(mut self, axis: SweepAxis) -> Self {
        self.spec
            .sweep
            .get_or_insert_with(|| SweepSpec { axes: Vec::new() })
            .axes
            .push(axis);
        self
    }

    /// Sets the fault-injection timeline wholesale.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.spec.fault = fault;
        self
    }

    /// Appends one fault event to the timeline.
    pub fn fault_event(mut self, event: FaultEvent) -> Self {
        self.spec.fault.events.push(event);
        self
    }

    /// Sets the Autopilot restart policy for fault scenarios.
    pub fn restart(mut self, restart: RestartSpec) -> Self {
        self.spec.fault.restart = restart;
        self
    }

    /// Selects the latency-recording backend.
    pub fn telemetry(mut self, t: TelemetrySpec) -> Self {
        self.spec.telemetry = t;
        self
    }

    /// Sets the overload-resilience policy wholesale.
    pub fn resilience(mut self, r: ResilienceSpec) -> Self {
        self.spec.resilience = r;
        self
    }

    /// Edits the overload-resilience policy in place.
    pub fn resilient(mut self, f: impl FnOnce(&mut ResilienceSpec)) -> Self {
        f(&mut self.spec.resilience);
        self
    }

    /// Sets the measurement window.
    pub fn scale(mut self, scale: ScaleSpec) -> Self {
        self.spec.scale = scale;
        self
    }

    /// Sets an explicit warm-up + measured window, in milliseconds.
    pub fn custom_scale(mut self, warmup_ms: u64, measure_ms: u64) -> Self {
        self.spec.scale = ScaleSpec::Custom {
            warmup_ms,
            measure_ms,
        };
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the repetition count (seeds `seed..seed + n`).
    pub fn seeds(mut self, n: u32) -> Self {
        self.spec.seeds = n;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn build(self) -> Result<ScenarioSpec, SpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let spec = ScenarioSpec::builder("ok").build().unwrap();
        assert_eq!(spec.target.kind(), "single-box");
        assert_eq!(spec.seed_list(None), vec![42]);
        assert_eq!(spec.seed_list(Some(3)), vec![42, 43, 44]);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(matches!(
            ScenarioSpec::builder("bad name").build(),
            Err(SpecError::InvalidName(_))
        ));
        assert!(matches!(
            ScenarioSpec::builder("x").single_box(0.0).build(),
            Err(SpecError::InvalidQps(_))
        ));
        assert!(matches!(
            ScenarioSpec::builder("x").seeds(0).build(),
            Err(SpecError::ZeroSeeds)
        ));
        assert!(matches!(
            ScenarioSpec::builder("x")
                .policy(Policy::CycleCap(1.5))
                .build(),
            Err(SpecError::InvalidPolicy(_))
        ));
        assert!(matches!(
            ScenarioSpec::builder("x")
                .cpu_bully(BullyIntensity::High)
                .policy(Policy::Standalone)
                .build(),
            Err(SpecError::StandaloneWithSecondary)
        ));
        assert!(matches!(
            ScenarioSpec::builder("x")
                .cluster(
                    Topology {
                        columns: 0,
                        rows: 1,
                        tlas: 1
                    },
                    100.0
                )
                .build(),
            Err(SpecError::InvalidTopology(_))
        ));
    }

    #[test]
    fn target_mismatch_is_reported() {
        let spec = ScenarioSpec::builder("x")
            .cluster(Topology::small(), 600.0)
            .policy(Policy::FullPerfIso)
            .build()
            .unwrap();
        assert!(matches!(
            spec.run_plan(),
            Err(SpecError::TargetMismatch { .. })
        ));
        assert!(spec.cluster_config(1, 1).is_ok());
    }

    #[test]
    fn spec_json_round_trip() {
        let spec = ScenarioSpec::builder("rt")
            .describe("round trip")
            .single_box(1_234.0)
            .cpu_bully(BullyIntensity::Custom(13))
            .disk_bully(DiskBully::default())
            .hdfs()
            .policy(Policy::Blind { buffer_cores: 6 })
            .custom_scale(100, 300)
            .seed(7)
            .seeds(4)
            .build()
            .unwrap();
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn controller_overrides_reach_every_target() {
        let tuned = |b: ScenarioBuilder| {
            b.policy(Policy::Blind { buffer_cores: 8 })
                .tune(|c| {
                    c.buffer_cores = Some(4);
                    c.cpu_poll_interval_us = Some(5_000);
                    c.memory_kill_watermark = Some(0.8);
                })
                .cpu_bully(BullyIntensity::Mid)
        };
        let single = tuned(ScenarioSpec::builder("s")).build().unwrap();
        let cfg = single.box_config(1).unwrap();
        let p = cfg.perfiso.expect("controller installed");
        assert_eq!(p.cpu, perfiso::CpuPolicy::Blind { buffer_cores: 4 });
        assert_eq!(p.cpu_poll_interval, SimDuration::from_micros(5_000));
        assert_eq!(p.memory_kill_watermark, 0.8);

        let cluster = tuned(ScenarioSpec::builder("c").cluster(Topology::small(), 600.0))
            .build()
            .unwrap();
        let p = cluster.cluster_config(1, 1).unwrap().perfiso.unwrap();
        assert_eq!(p.cpu, perfiso::CpuPolicy::Blind { buffer_cores: 4 });

        let fleet = ScenarioSpec::builder("f")
            .fleet(2, 1, 100)
            .policy(Policy::Blind { buffer_cores: 8 })
            .tune(|c| c.cpu_poll_interval_us = Some(2_000))
            .build()
            .unwrap();
        let p = fleet.fleet_config(1, 1).unwrap().perfiso;
        assert_eq!(p.cpu_poll_interval, SimDuration::from_micros(2_000));
    }

    #[test]
    fn controller_validation_rejects_bad_overrides() {
        // Overrides without a controller-bearing policy.
        let err = ScenarioSpec::builder("x")
            .policy(Policy::NoIsolation)
            .cpu_bully(BullyIntensity::Mid)
            .tune(|c| c.cpu_poll_interval_us = Some(1_000))
            .build();
        assert!(
            matches!(err, Err(SpecError::InvalidController(_))),
            "{err:?}"
        );
        // buffer_cores on a non-blind CPU mechanism.
        let err = ScenarioSpec::builder("x")
            .policy(Policy::StaticCores(8))
            .cpu_bully(BullyIntensity::Mid)
            .tune(|c| c.buffer_cores = Some(4))
            .build();
        assert!(
            matches!(err, Err(SpecError::InvalidController(_))),
            "{err:?}"
        );
        // Out-of-range knobs bubble up from PerfIsoConfig::validate.
        let bads: [&dyn Fn(&mut ControllerSpec); 7] = [
            &|c| c.cpu_poll_interval_us = Some(0),
            &|c| c.io_poll_interval_us = Some(0),
            &|c| c.memory_poll_interval_us = Some(0),
            &|c| c.memory_kill_watermark = Some(0.0),
            &|c| c.memory_kill_watermark = Some(1.5),
            &|c| c.buffer_cores = Some(48),
            &|c| {
                c.tenant_limits = vec![TenantLimitSpec {
                    service: String::new(),
                    mbps: Some(10),
                    iops: None,
                }]
            },
        ];
        for bad in bads {
            let err = ScenarioSpec::builder("x")
                .policy(Policy::Blind { buffer_cores: 8 })
                .cpu_bully(BullyIntensity::Mid)
                .tune(|c| bad(c))
                .build();
            assert!(
                matches!(err, Err(SpecError::InvalidController(_))),
                "{err:?}"
            );
        }
        // Duplicate tenant overrides.
        let err = ScenarioSpec::builder("x")
            .policy(Policy::FullPerfIso)
            .cpu_bully(BullyIntensity::Mid)
            .tune(|c| {
                c.tenant_limits = vec![
                    TenantLimitSpec {
                        service: "hdfs-client".into(),
                        mbps: Some(10),
                        iops: None,
                    },
                    TenantLimitSpec {
                        service: "hdfs-client".into(),
                        mbps: Some(20),
                        iops: None,
                    },
                ]
            })
            .build();
        assert!(
            matches!(err, Err(SpecError::InvalidController(_))),
            "{err:?}"
        );
        // Typo'd service names would be silently inert at run time.
        let err = ScenarioSpec::builder("x")
            .policy(Policy::FullPerfIso)
            .cpu_bully(BullyIntensity::Mid)
            .tune(|c| {
                c.tenant_limits = vec![TenantLimitSpec {
                    service: "hdfs_client".into(), // underscore typo
                    mbps: Some(10),
                    iops: None,
                }]
            })
            .build();
        assert!(
            matches!(err, Err(SpecError::InvalidController(_))),
            "{err:?}"
        );
        let err = ScenarioSpec::builder("x")
            .policy(Policy::FullPerfIso)
            .cpu_bully(BullyIntensity::Mid)
            .sweep_axis(SweepAxis::TenantIoMbps {
                service: "hdfs_client".into(),
                mbps: vec![10],
            })
            .build();
        assert!(matches!(err, Err(SpecError::InvalidSweep(_))), "{err:?}");
    }

    #[test]
    fn sweep_validation_covers_cells() {
        // A sweep whose cells are all valid builds fine.
        let spec = ScenarioSpec::builder("ok")
            .policy(Policy::Blind { buffer_cores: 8 })
            .cpu_bully(BullyIntensity::Mid)
            .sweep_axis(SweepAxis::BufferCores(vec![1, 2, 4]))
            .build()
            .unwrap();
        assert_eq!(spec.expand_sweep().unwrap().len(), 3);
        // A sweep containing one invalid cell is rejected with its label.
        let err = ScenarioSpec::builder("bad")
            .policy(Policy::Blind { buffer_cores: 8 })
            .cpu_bully(BullyIntensity::Mid)
            .sweep_axis(SweepAxis::BufferCores(vec![4, 48]))
            .build();
        match err {
            Err(SpecError::InvalidSweep(msg)) => assert!(
                msg.contains("buffer_cores=48"),
                "label missing from {msg:?}"
            ),
            other => panic!("expected InvalidSweep, got {other:?}"),
        }
        // expand_sweep on a sweep-free spec is an error.
        let plain = ScenarioSpec::builder("plain").build().unwrap();
        assert!(matches!(
            plain.expand_sweep(),
            Err(SpecError::InvalidSweep(_))
        ));
    }

    #[test]
    fn controller_and_sweep_round_trip_through_json() {
        let spec = ScenarioSpec::builder("rt-ctl")
            .describe("controller round trip")
            .policy(Policy::FullPerfIso)
            .cpu_bully(BullyIntensity::Mid)
            .hdfs()
            .tune(|c| {
                c.cpu_poll_interval_us = Some(2_000);
                c.secondary_memory_limit_mb = Some(4_096);
                c.tenant_limits = vec![TenantLimitSpec {
                    service: "hdfs-client".into(),
                    mbps: Some(30),
                    iops: Some(500),
                }];
            })
            .sweep_axis(SweepAxis::CpuPollIntervalUs(vec![1_000, 2_000]))
            .sweep_axis(SweepAxis::TenantIoMbps {
                service: "hdfs-client".into(),
                mbps: vec![10, 60],
            })
            .custom_scale(100, 300)
            .build()
            .unwrap();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        // A pre-ControllerSpec spec file (no `controller`/`sweep` keys)
        // still loads, with no overrides and no sweep.
        let legacy = r#"{
            "name": "legacy", "description": "",
            "target": {"SingleBox": {"qps": 2000.0}},
            "secondary": {"cpu_bully": null, "disk_bully": null, "hdfs": false},
            "policy": "Standalone", "scale": "Quick", "seed": 42, "seeds": 1
        }"#;
        let legacy_spec = ScenarioSpec::from_json(legacy).unwrap();
        assert!(legacy_spec.controller.is_default());
        assert!(legacy_spec.sweep.is_none());
    }

    #[test]
    fn fleet_requires_controller_and_clean_secondary() {
        let err = ScenarioSpec::builder("f")
            .fleet(2, 1, 100)
            .policy(Policy::NoIsolation)
            .build();
        assert!(matches!(err, Err(SpecError::FleetNeedsController)));
        let err = ScenarioSpec::builder("f")
            .fleet(2, 1, 100)
            .cpu_bully(BullyIntensity::Mid)
            .policy(Policy::Blind { buffer_cores: 8 })
            .build();
        assert!(matches!(err, Err(SpecError::FleetSecondaryUnsupported)));
    }
}
