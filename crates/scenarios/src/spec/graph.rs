//! Declarative service-graph workloads.
//!
//! [`ServiceGraphSpec`] is the serialized form of a
//! [`workloads::service_graph::GraphWorkload`]: stages are named (edges
//! reference stages by name, so spec files stay readable and reorderable)
//! and sizes use friendly units (µs compute, MB footprints, ms
//! deadlines). [`ServiceGraphSpec::check_shape`] rejects every structural
//! defect — duplicate or dangling stage names, cycles, fan-outs beyond
//! the tag encoding — before a simulator is ever built, mirroring how
//! [`super::FaultSpec`] validates fault timelines.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use workloads::service_graph::{GraphEdge, GraphStage, GraphWorkload};

/// One named compute stage of a declared service graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name; unique within the graph, referenced by edges.
    pub name: String,
    /// Parallel worker threads spawned per activation.
    pub fan_out: u32,
    /// Median per-worker compute time, microseconds.
    pub compute_us: f64,
    /// Log-normal shape of the compute-time distribution (0 = constant).
    pub sigma: f64,
    /// Resident memory this stage contributes, megabytes.
    pub memory_mb: u64,
}

/// One directed hop between two named stages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Source stage name.
    pub from: String,
    /// Destination stage name.
    pub to: String,
    /// Message payload, bytes.
    pub bytes: u64,
    /// Extra propagation latency on top of the fabric's base hop cost,
    /// microseconds.
    pub latency_us: u64,
}

/// A declared microservice-chain workload: a DAG of [`StageSpec`]s
/// connected by [`EdgeSpec`]s, with a per-request deadline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceGraphSpec {
    /// The stages; roots (no in-edge) activate on arrival, sinks (no
    /// out-edge) complete the request.
    pub stages: Vec<StageSpec>,
    /// The hops; empty means every stage is both root and sink.
    pub edges: Vec<EdgeSpec>,
    /// Per-request deadline, milliseconds.
    pub timeout_ms: u64,
}

impl ServiceGraphSpec {
    /// Resolves stage names to indices and converts units.
    fn resolve(&self) -> Result<GraphWorkload, String> {
        let index_of = |name: &str| -> Result<u32, String> {
            self.stages
                .iter()
                .position(|s| s.name == name)
                .map(|i| i as u32)
                .ok_or_else(|| format!("edge references unknown stage {name:?}"))
        };
        let stages = self
            .stages
            .iter()
            .map(|s| GraphStage {
                name: s.name.clone(),
                fan_out: s.fan_out,
                compute_us: s.compute_us,
                sigma: s.sigma,
                memory_bytes: s.memory_mb << 20,
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Ok(GraphEdge {
                    from: index_of(&e.from)?,
                    to: index_of(&e.to)?,
                    bytes: e.bytes,
                    latency: SimDuration::from_micros(e.latency_us),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(GraphWorkload {
            stages,
            edges,
            timeout: SimDuration::from_millis(self.timeout_ms),
        })
    }

    /// Checks the graph is well-formed: unique non-empty stage names,
    /// edges referencing declared stages, a positive deadline, and every
    /// structural invariant of [`GraphWorkload::validate`] (bounds,
    /// no self-edges or duplicates, acyclicity).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_shape(&self) -> Result<(), String> {
        if self.timeout_ms == 0 {
            return Err("timeout_ms must be positive".into());
        }
        let mut seen = std::collections::HashSet::new();
        for s in &self.stages {
            if s.name.is_empty() || s.name.chars().any(char::is_whitespace) {
                return Err(format!(
                    "stage name {:?} must be non-empty, no whitespace",
                    s.name
                ));
            }
            if !seen.insert(s.name.as_str()) {
                return Err(format!("duplicate stage name {:?}", s.name));
            }
        }
        self.resolve()?.validate()
    }

    /// The executable workload this spec describes.
    ///
    /// # Errors
    ///
    /// Fails when [`ServiceGraphSpec::check_shape`] would fail.
    pub fn to_workload(&self) -> Result<GraphWorkload, String> {
        self.check_shape()?;
        self.resolve()
    }

    /// Total declared resident memory, megabytes.
    pub fn working_set_mb(&self) -> u64 {
        self.stages.iter().map(|s| s.memory_mb).sum()
    }

    /// One-line topology summary, `stages=N edges=M roots=R sinks=S`.
    pub fn shape_summary(&self) -> String {
        let n = self.stages.len();
        let mut has_in = vec![false; n];
        let mut has_out = vec![false; n];
        for e in &self.edges {
            if let Some(i) = self.stages.iter().position(|s| s.name == e.from) {
                has_out[i] = true;
            }
            if let Some(i) = self.stages.iter().position(|s| s.name == e.to) {
                has_in[i] = true;
            }
        }
        let roots = has_in.iter().filter(|b| !**b).count();
        let sinks = has_out.iter().filter(|b| !**b).count();
        format!(
            "stages={n} edges={} roots={roots} sinks={sinks}",
            self.edges.len()
        )
    }
}

/// Which primary workload class a scenario's target machines run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The classic IndexServe query-serving primary (the paper's
    /// workload; the default for every pre-existing spec file).
    IndexServe,
    /// A microservice chain: stages connected by simnet hops, executed
    /// by [`workloads::service_graph::GraphEngine`].
    ServiceGraph(ServiceGraphSpec),
}

// Manual rather than derived: the vendored serde_derive shim cannot
// parse a `#[default]` variant attribute alongside its own derives.
#[allow(clippy::derivable_impls)]
impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::IndexServe
    }
}

impl WorkloadSpec {
    /// True for the default IndexServe class (the serde skip predicate
    /// keeping pre-workload spec files byte-stable).
    pub fn is_index_serve(&self) -> bool {
        matches!(self, WorkloadSpec::IndexServe)
    }

    /// Short class label for tables.
    pub fn class_label(&self) -> &'static str {
        match self {
            WorkloadSpec::IndexServe => "indexserve",
            WorkloadSpec::ServiceGraph(_) => "service-graph",
        }
    }

    /// The graph spec, when this is a service-graph workload.
    pub fn as_graph(&self) -> Option<&ServiceGraphSpec> {
        match self {
            WorkloadSpec::IndexServe => None,
            WorkloadSpec::ServiceGraph(g) => Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ServiceGraphSpec {
        ServiceGraphSpec {
            stages: vec![
                StageSpec {
                    name: "a".into(),
                    fan_out: 1,
                    compute_us: 100.0,
                    sigma: 0.2,
                    memory_mb: 64,
                },
                StageSpec {
                    name: "b".into(),
                    fan_out: 4,
                    compute_us: 200.0,
                    sigma: 0.2,
                    memory_mb: 128,
                },
            ],
            edges: vec![EdgeSpec {
                from: "a".into(),
                to: "b".into(),
                bytes: 4096,
                latency_us: 50,
            }],
            timeout_ms: 20,
        }
    }

    #[test]
    fn valid_chain_converts() {
        let spec = chain();
        spec.check_shape().unwrap();
        let wl = spec.to_workload().unwrap();
        assert_eq!(wl.stages.len(), 2);
        assert_eq!(wl.edges[0].from, 0);
        assert_eq!(wl.edges[0].to, 1);
        assert_eq!(wl.stages[1].memory_bytes, 128 << 20);
        assert_eq!(spec.working_set_mb(), 192);
        assert_eq!(spec.shape_summary(), "stages=2 edges=1 roots=1 sinks=1");
    }

    #[test]
    fn shape_errors_are_specific() {
        let mut dup = chain();
        dup.stages[1].name = "a".into();
        assert!(dup.check_shape().unwrap_err().contains("duplicate"));

        let mut dangling = chain();
        dangling.edges[0].to = "nope".into();
        assert!(dangling.check_shape().unwrap_err().contains("unknown"));

        let mut cyclic = chain();
        cyclic.edges.push(EdgeSpec {
            from: "b".into(),
            to: "a".into(),
            bytes: 1,
            latency_us: 1,
        });
        assert!(cyclic.check_shape().unwrap_err().contains("cycle"));

        let mut dead = chain();
        dead.timeout_ms = 0;
        assert!(dead.check_shape().unwrap_err().contains("timeout"));

        let empty = ServiceGraphSpec {
            stages: Vec::new(),
            edges: Vec::new(),
            timeout_ms: 10,
        };
        assert!(empty.check_shape().is_err());
    }

    #[test]
    fn workload_spec_round_trips() {
        let w = WorkloadSpec::ServiceGraph(chain());
        let text = serde_json::to_string(&w).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, w);
        assert!(!w.is_index_serve());
        assert_eq!(w.class_label(), "service-graph");
        assert!(WorkloadSpec::default().is_index_serve());
    }
}
