//! Spec-expressible overload-resilience policies.
//!
//! [`ResilienceSpec`] is the declarative face of
//! [`workloads::ResiliencePolicy`]: admission control, retries, hedging,
//! circuit breakers, and deadline propagation, each independently
//! optional. A disabled spec (`ResilienceSpec::default()`) serializes to
//! nothing and compiles to no policy at all, so pre-resilience spec files
//! and golden fixtures stay valid byte for byte; an enabled spec is
//! validated at build time ([`ResilienceSpec::check_shape`]) and handed to
//! the drivers as one shared [`ResiliencePolicy`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use workloads::{AdmissionPolicy, BreakerPolicy, HedgePolicy, ResiliencePolicy, RetryPolicy};

/// Spec-side admission control: shed arrivals past a concurrency +
/// queue-depth cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionSpec {
    /// Requests allowed to run concurrently (≥ 1).
    pub max_in_flight: u64,
    /// Additional arrivals allowed to queue beyond the concurrency limit.
    pub queue_depth: u64,
}

/// Spec-side retry policy: exponential backoff with deterministic jitter
/// and a hard attempt budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrySpec {
    /// Delay before the first retry, milliseconds (≥ 1).
    pub base_backoff_ms: u64,
    /// Backoff multiplier per additional retry (≥ 1).
    pub multiplier: u32,
    /// Maximum retries per request, `1..=`[`RetryPolicy::MAX_BUDGET`].
    pub budget: u32,
    /// Upper bound on the deterministic per-attempt jitter, milliseconds.
    pub jitter_ms: u64,
}

/// Spec-side hedging: duplicate a straggling stage once its runtime
/// passes this percentile of its own compute distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HedgeSpec {
    /// Hedge-trigger percentile, strictly inside `(0, 1)` (e.g. 0.95
    /// hedges the slowest 5 % of stage executions).
    pub percentile: f64,
}

/// Spec-side circuit breaker: open after `threshold` consecutive
/// failures, half-open after `cooldown_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSpec {
    /// Consecutive failures that trip the breaker open (≥ 1).
    pub threshold: u32,
    /// Cooldown before a half-open probe, milliseconds (≥ 1).
    pub cooldown_ms: u64,
}

/// A scenario's overload-resilience policy.
///
/// Every mechanism is independently optional; the default enables none of
/// them, is never serialized (the spec layer uses
/// [`ResilienceSpec::is_disabled`] as its skip predicate), and compiles to
/// `None` so unconfigured runs take the exact pre-resilience code paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// Admission control / load shedding.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub admission: Option<AdmissionSpec>,
    /// Retries with exponential backoff.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry: Option<RetrySpec>,
    /// Stage hedging.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hedge: Option<HedgeSpec>,
    /// Per-edge circuit breakers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub breaker: Option<BreakerSpec>,
    /// Cancel downstream stages whose inherited deadline budget is
    /// already spent.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub propagate_deadlines: bool,
}

impl ResilienceSpec {
    /// True when no mechanism is enabled (serde skip predicate: disabled
    /// specs are never serialized, keeping pre-resilience files stable).
    pub fn is_disabled(&self) -> bool {
        *self == ResilienceSpec::default()
    }

    /// Structural checks that do not need the surrounding scenario.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn check_shape(&self) -> Result<(), String> {
        if let Some(a) = &self.admission {
            if a.max_in_flight == 0 {
                return Err("admission control needs max_in_flight >= 1".into());
            }
        }
        if let Some(r) = &self.retry {
            if r.base_backoff_ms == 0 {
                return Err("retry base backoff must be at least 1 ms".into());
            }
            if r.multiplier == 0 {
                return Err("retry multiplier must be at least 1".into());
            }
            if r.budget == 0 || r.budget > RetryPolicy::MAX_BUDGET {
                return Err(format!(
                    "retry budget must be in 1..={}, got {}",
                    RetryPolicy::MAX_BUDGET,
                    r.budget
                ));
            }
        }
        if let Some(h) = &self.hedge {
            if !(h.percentile.is_finite() && h.percentile > 0.0 && h.percentile < 1.0) {
                return Err(format!(
                    "hedge percentile must be strictly inside (0, 1), got {}",
                    h.percentile
                ));
            }
        }
        if let Some(b) = &self.breaker {
            if b.threshold == 0 {
                return Err("breaker threshold must be at least 1 failure".into());
            }
            if b.cooldown_ms == 0 {
                return Err("breaker cooldown must be at least 1 ms".into());
            }
        }
        Ok(())
    }

    /// Compiles the spec into the runtime policy the drivers share, or
    /// `None` when disabled (so unconfigured boxes stay bit-identical to
    /// pre-resilience builds).
    pub fn to_policy(&self) -> Option<Arc<ResiliencePolicy>> {
        if self.is_disabled() {
            return None;
        }
        Some(Arc::new(ResiliencePolicy {
            admission: self.admission.map(|a| AdmissionPolicy {
                max_in_flight: a.max_in_flight,
                queue_depth: a.queue_depth,
            }),
            retry: self.retry.map(|r| RetryPolicy {
                base_backoff: SimDuration::from_millis(r.base_backoff_ms),
                multiplier: r.multiplier,
                budget: r.budget,
                jitter: SimDuration::from_millis(r.jitter_ms),
            }),
            hedge: self.hedge.map(|h| HedgePolicy {
                percentile: h.percentile,
            }),
            breaker: self.breaker.map(|b| BreakerPolicy {
                threshold: b.threshold,
                cooldown: SimDuration::from_millis(b.cooldown_ms),
            }),
            propagate_deadlines: self.propagate_deadlines,
        }))
    }

    /// Multi-line description for `perfiso-run show` (one line per
    /// enabled mechanism; empty when disabled).
    pub fn describe(&self) -> Vec<String> {
        let mut lines = Vec::new();
        if let Some(a) = &self.admission {
            lines.push(format!(
                "admission: shed past {} in flight + {} queued",
                a.max_in_flight, a.queue_depth
            ));
        }
        if let Some(r) = &self.retry {
            lines.push(format!(
                "retry: {} attempts, {}ms backoff x{} (+<= {}ms jitter)",
                r.budget, r.base_backoff_ms, r.multiplier, r.jitter_ms
            ));
        }
        if let Some(h) = &self.hedge {
            lines.push(format!(
                "hedge: duplicate stages past p{:.0}",
                h.percentile * 100.0
            ));
        }
        if let Some(b) = &self.breaker {
            lines.push(format!(
                "breaker: open after {} consecutive failures, {}ms cooldown",
                b.threshold, b.cooldown_ms
            ));
        }
        if self.propagate_deadlines {
            lines.push("deadlines: propagate and cancel hopeless work".into());
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> ResilienceSpec {
        ResilienceSpec {
            admission: Some(AdmissionSpec {
                max_in_flight: 64,
                queue_depth: 32,
            }),
            retry: Some(RetrySpec {
                base_backoff_ms: 2,
                multiplier: 2,
                budget: 3,
                jitter_ms: 1,
            }),
            hedge: Some(HedgeSpec { percentile: 0.95 }),
            breaker: Some(BreakerSpec {
                threshold: 5,
                cooldown_ms: 50,
            }),
            propagate_deadlines: true,
        }
    }

    #[test]
    fn default_is_disabled_and_compiles_to_none() {
        let d = ResilienceSpec::default();
        assert!(d.is_disabled());
        assert!(d.check_shape().is_ok());
        assert!(d.to_policy().is_none());
        assert!(d.describe().is_empty());
    }

    #[test]
    fn full_spec_compiles_to_matching_policy() {
        let s = full();
        assert!(!s.is_disabled());
        s.check_shape().unwrap();
        let p = s.to_policy().unwrap();
        assert_eq!(p.admission.unwrap().max_in_flight, 64);
        assert_eq!(p.retry.unwrap().base_backoff, SimDuration::from_millis(2));
        assert_eq!(p.hedge.unwrap().percentile, 0.95);
        assert_eq!(p.breaker.unwrap().cooldown, SimDuration::from_millis(50));
        assert!(p.propagate_deadlines);
        assert_eq!(s.describe().len(), 5);
    }

    #[test]
    fn shape_checks_reject_degenerate_specs() {
        let bads: [&dyn Fn(&mut ResilienceSpec); 7] = [
            &|s| s.admission.as_mut().unwrap().max_in_flight = 0,
            &|s| s.retry.as_mut().unwrap().base_backoff_ms = 0,
            &|s| s.retry.as_mut().unwrap().multiplier = 0,
            &|s| s.retry.as_mut().unwrap().budget = 0,
            &|s| s.retry.as_mut().unwrap().budget = RetryPolicy::MAX_BUDGET + 1,
            &|s| s.hedge.as_mut().unwrap().percentile = 1.0,
            &|s| s.breaker.as_mut().unwrap().cooldown_ms = 0,
        ];
        for bad in bads {
            let mut s = full();
            bad(&mut s);
            assert!(s.check_shape().is_err(), "{s:?}");
        }
    }
}
