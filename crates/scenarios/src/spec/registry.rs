//! The named paper scenarios.
//!
//! Every figure of the evaluation (and the repo's guided-tour scenarios)
//! is registered here as a ready-to-run [`ScenarioSpec`]; `perfiso-run
//! list` prints this table and `perfiso-run run <name>` executes one
//! entry. Comparison figures (Fig 4–8 contrast several policies) register
//! their *headline* cell — the bench targets under `crates/bench` compose
//! multiple specs into the full side-by-side tables.

use cluster::Topology;
use workloads::{BullyIntensity, DiskBully};

use super::{
    AdmissionSpec, BreakerSpec, ControllerSpec, CurveSpec, EdgeSpec, FaultEvent,
    FleetProductionSpec, HedgeSpec, RestartSpec, RetrySpec, ScaleSpec, ScenarioSpec,
    ServiceGraphSpec, StageSpec, SweepAxis, TelemetrySpec,
};
use crate::Policy;

/// Stage-literal shorthand for the registry graphs.
fn stage(name: &str, fan_out: u32, compute_us: f64, sigma: f64, memory_mb: u64) -> StageSpec {
    StageSpec {
        name: name.to_string(),
        fan_out,
        compute_us,
        sigma,
        memory_mb,
    }
}

/// Edge-literal shorthand for the registry graphs.
fn edge(from: &str, to: &str, bytes: u64, latency_us: u64) -> EdgeSpec {
    EdgeSpec {
        from: from.to_string(),
        to: to.to_string(),
        bytes,
        latency_us,
    }
}

/// The four-stage microservice chain `graph-chain` serves: an
/// IndexServe-shaped pipeline expressed as explicit services connected
/// by fabric hops.
fn chain_graph() -> ServiceGraphSpec {
    ServiceGraphSpec {
        stages: vec![
            stage("gateway", 1, 150.0, 0.3, 2_048),
            stage("match", 8, 250.0, 0.4, 65_536),
            stage("rank", 4, 200.0, 0.35, 32_768),
            stage("respond", 1, 120.0, 0.25, 2_048),
        ],
        edges: vec![
            edge("gateway", "match", 16_384, 50),
            edge("match", "rank", 65_536, 80),
            edge("rank", "respond", 8_192, 40),
        ],
        timeout_ms: 25,
    }
}

/// The scatter-gather DAG `graph-fanout` serves: one root scattering to
/// four parallel shards, gathered by a merge stage.
fn fanout_graph() -> ServiceGraphSpec {
    let shards = ["shard-0", "shard-1", "shard-2", "shard-3"];
    let mut stages = vec![stage("root", 1, 120.0, 0.25, 1_024)];
    let mut edges = Vec::new();
    for s in shards {
        stages.push(stage(s, 4, 300.0, 0.4, 16_384));
        edges.push(edge("root", s, 8_192, 40));
        edges.push(edge(s, "merge", 32_768, 60));
    }
    stages.push(stage("merge", 1, 150.0, 0.3, 2_048));
    ServiceGraphSpec {
        stages,
        edges,
        timeout_ms: 25,
    }
}

/// All named scenarios, in presentation order.
pub fn registry() -> Vec<ScenarioSpec> {
    let b = |name: &str| ScenarioSpec::builder(name).seed(42);
    vec![
        b("quickstart")
            .describe("high CPU bully under blind isolation (the guided tour)")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .custom_scale(500, 4_000)
            .build()
            .expect("registry spec"),
        b("standalone")
            .describe("IndexServe alone at average load (the §6.1.1 baseline)")
            .single_box(2_000.0)
            .policy(Policy::Standalone)
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig04")
            .describe("no isolation vs a high (48-thread) CPU bully: the tail collapses")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::NoIsolation)
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig05")
            .describe("CPU blind isolation, 8 buffer cores: p99 within 1 ms of standalone")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig06")
            .describe("static 8-core restriction: safe at peak but strands CPU")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::StaticCores(8))
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig07")
            .describe("45% CPU-cycle cap: duty-cycle throttling fails to protect the tail")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::CycleCap(0.45))
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig08")
            .describe("the comparison's peak-load cell: blind isolation at 4000 QPS")
            .single_box(4_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("fig09")
            .describe("75-machine cluster, CPU bully + HDFS on every index machine")
            .cluster(Topology::paper_cluster(), 8_000.0)
            .cpu_bully(BullyIntensity::High)
            .hdfs()
            .policy(Policy::FullPerfIso)
            .custom_scale(400, 1_200)
            .seeds(2)
            .build()
            .expect("registry spec"),
        b("fig10")
            .describe("650-machine fleet, one diurnal hour colocated with ML training")
            .fleet(60, 3, 700)
            .policy(Policy::Blind { buffer_cores: 8 })
            .build()
            .expect("registry spec"),
        b("io-throttle")
            .describe("disk bully + HDFS on the shared HDD under the full controller")
            .single_box(2_000.0)
            .disk_bully(DiskBully {
                depth: 8,
                ..DiskBully::default()
            })
            .hdfs()
            .policy(Policy::FullPerfIso)
            .custom_scale(500, 3_000)
            .build()
            .expect("registry spec"),
        b("cluster-small")
            .describe("the scaled-down cluster the integration tests exercise")
            .cluster(Topology::small(), 600.0)
            .cpu_bully(BullyIntensity::High)
            .hdfs()
            .policy(Policy::FullPerfIso)
            .custom_scale(200, 800)
            .build()
            .expect("registry spec"),
        b("fleet-smoke")
            .describe("seconds-scale fleet sweep (the CI smoke configuration)")
            .fleet(8, 2, 200)
            .policy(Policy::Blind { buffer_cores: 8 })
            .build()
            .expect("registry spec"),
        b("fleet-flat")
            .describe("fleet control run on a flat load curve")
            .fleet(10, 1, 300)
            .curve(CurveSpec::Flat { qps: 2_200.0 })
            .policy(Policy::Blind { buffer_cores: 8 })
            .build()
            .expect("registry spec"),
        b("fleet-production")
            .describe("10k-machine production day: diurnal 24h curve, mixed hardware, tenant churn, sketch telemetry")
            .fleet(96, 12, 300)
            .fleet_machines(10_000)
            .curve(CurveSpec::ProductionDay)
            .production(FleetProductionSpec {
                minute_stride: 15,
                heterogeneous_shapes: true,
                tenant_churn: true,
            })
            .telemetry(TelemetrySpec::Sketch)
            .policy(Policy::Blind { buffer_cores: 8 })
            .scale(ScaleSpec::Bench)
            .build()
            .expect("registry spec"),
        b("poll-sensitivity")
            .describe("reaction-time grid: CPU poll interval x buffer cores under a high bully")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .sweep_axis(SweepAxis::CpuPollIntervalUs(vec![
                1_000, 5_000, 20_000, 100_000,
            ]))
            .sweep_axis(SweepAxis::BufferCores(vec![1, 2, 4]))
            .custom_scale(300, 1_200)
            .build()
            .expect("registry spec"),
        b("mem-kill")
            .describe("memory watchdog grid: kill watermark x watchdog period around the box's ~92% footprint")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::Mid)
            .policy(Policy::Blind { buffer_cores: 8 })
            .sweep_axis(SweepAxis::MemoryKillWatermark(vec![0.85, 0.95]))
            .sweep_axis(SweepAxis::MemoryPollIntervalUs(vec![250_000, 1_000_000]))
            .custom_scale(300, 1_500)
            .build()
            .expect("registry spec"),
        b("tenant-io-limits")
            .describe("per-tenant HDFS I/O caps under the full controller, disk bully on the shared HDD")
            .single_box(2_000.0)
            .disk_bully(DiskBully::default())
            .hdfs()
            .policy(Policy::FullPerfIso)
            .sweep_axis(SweepAxis::TenantIoMbps {
                service: "hdfs-client".into(),
                mbps: vec![10, 60, 240],
            })
            .sweep_axis(SweepAxis::TenantIoMbps {
                service: "hdfs-replication".into(),
                mbps: vec![5, 20],
            })
            .custom_scale(300, 1_500)
            .build()
            .expect("registry spec"),
        b("chaos-controller-crash")
            .describe("§4.2 recovery: kill the controller mid-run, Autopilot restarts it from checkpoint")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::FullPerfIso)
            .fault_event(FaultEvent::ControllerCrash {
                at_ms: 500,
                downtime_polls: 150,
            })
            .restart(RestartSpec {
                base_backoff_ms: 50,
                multiplier: 2,
                max_failures: 5,
            })
            .custom_scale(300, 1_500)
            .build()
            .expect("registry spec"),
        b("chaos-crash-loop")
            .describe("crash-looping controller: exponential backoff, then Autopilot gives up")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::FullPerfIso)
            .fault_event(FaultEvent::ControllerCrash {
                at_ms: 400,
                downtime_polls: 50,
            })
            .fault_event(FaultEvent::ControllerCrash {
                at_ms: 550,
                downtime_polls: 50,
            })
            .fault_event(FaultEvent::ControllerCrash {
                at_ms: 800,
                downtime_polls: 50,
            })
            .restart(RestartSpec {
                base_backoff_ms: 100,
                multiplier: 2,
                max_failures: 2,
            })
            .custom_scale(300, 1_200)
            .build()
            .expect("registry spec"),
        b("chaos-config-rollout")
            .describe("staged config rollouts through the versioned store: one accepted, one rolled back by the tail-latency watchdog")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::FullPerfIso)
            .fault_event(FaultEvent::ConfigRollout {
                at_ms: 500,
                key: "perfiso-poll".into(),
                doc: ControllerSpec {
                    cpu_poll_interval_us: Some(2_000),
                    ..Default::default()
                },
                staged_pct: 100,
                rollback_p99_ms: None,
            })
            .fault_event(FaultEvent::ConfigRollout {
                at_ms: 900,
                key: "perfiso-slow".into(),
                doc: ControllerSpec {
                    cpu_poll_interval_us: Some(100_000),
                    ..Default::default()
                },
                staged_pct: 100,
                rollback_p99_ms: Some(10),
            })
            .custom_scale(300, 1_500)
            .build()
            .expect("registry spec"),
        b("chaos-secondary-churn")
            .describe("secondary crash/respawn churn under blind isolation")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .fault_event(FaultEvent::SecondaryRestart {
                at_ms: 500,
                downtime_ms: 150,
            })
            .fault_event(FaultEvent::SecondaryRestart {
                at_ms: 900,
                downtime_ms: 150,
            })
            .restart(RestartSpec {
                base_backoff_ms: 50,
                multiplier: 2,
                max_failures: 5,
            })
            .custom_scale(300, 1_200)
            .build()
            .expect("registry spec"),
        b("chaos-churn-storm")
            .describe("rapid secondary kill/respawn storm: five churn cycles in half a second under blind isolation")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .fault_event(FaultEvent::ChurnStorm {
                at_ms: 400,
                cycles: 5,
                period_ms: 100,
                downtime_ms: 40,
            })
            .restart(RestartSpec {
                base_backoff_ms: 20,
                multiplier: 2,
                max_failures: 8,
            })
            .custom_scale(300, 1_200)
            .build()
            .expect("registry spec"),
        b("chaos-connection-flood")
            .describe("arrival flood (+3000 qps for 300 ms) absorbed by admission control: excess is shed, admitted tail survives")
            .single_box(2_000.0)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .fault_event(FaultEvent::ConnectionFlood {
                at_ms: 400,
                duration_ms: 300,
                extra_qps: 10_000,
            })
            .resilient(|r| {
                r.admission = Some(AdmissionSpec {
                    max_in_flight: 32,
                    queue_depth: 8,
                })
            })
            .custom_scale(300, 1_200)
            .build()
            .expect("registry spec"),
        b("chaos-quota-exhaustion")
            .describe("HDFS client blows its I/O quota (ops x4 for 400 ms); per-tenant caps hold the primary's tail")
            .single_box(2_000.0)
            .disk_bully(DiskBully::default())
            .hdfs()
            .policy(Policy::FullPerfIso)
            .fault_event(FaultEvent::QuotaExhaustion {
                at_ms: 400,
                duration_ms: 400,
                tenant: "hdfs-client".into(),
                multiplier: 4.0,
            })
            .custom_scale(300, 1_500)
            .build()
            .expect("registry spec"),
        b("graph-hedged")
            .describe("scatter-gather graph with the full resilience policy: hedged stragglers, retries, breakers, deadline propagation")
            .single_box(1_000.0)
            .graph(fanout_graph())
            .policy(Policy::Standalone)
            .resilient(|r| {
                r.retry = Some(RetrySpec {
                    base_backoff_ms: 2,
                    multiplier: 2,
                    budget: 2,
                    jitter_ms: 1,
                });
                r.hedge = Some(HedgeSpec { percentile: 0.9 });
                r.breaker = Some(BreakerSpec {
                    threshold: 8,
                    cooldown_ms: 100,
                });
                r.propagate_deadlines = true;
            })
            .custom_scale(400, 1_600)
            .build()
            .expect("registry spec"),
        b("graph-chain")
            .describe("four-stage microservice chain under a high CPU bully, blind isolation")
            .single_box(1_500.0)
            .graph(chain_graph())
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .custom_scale(400, 1_600)
            .build()
            .expect("registry spec"),
        b("graph-fanout")
            .describe("scatter-gather service graph (root, 4 shards, merge) running standalone")
            .single_box(1_000.0)
            .graph(fanout_graph())
            .policy(Policy::Standalone)
            .custom_scale(400, 1_600)
            .build()
            .expect("registry spec"),
        b("dual-primary-arbitration")
            .describe("two latency-sensitive services share one box; PerfIso arbitrates both tails against a high bully")
            .hosted_service("web", 1_800.0, 53_248)
            .hosted_service("ads", 1_200.0, 40_960)
            .cpu_bully(BullyIntensity::High)
            .policy(Policy::Blind { buffer_cores: 8 })
            .custom_scale(400, 1_600)
            .build()
            .expect("registry spec"),
    ]
}

/// All scenario names, in presentation order.
pub fn names() -> Vec<String> {
    registry().into_iter().map(|s| s.name).collect()
}

/// Resolves one named scenario.
///
/// # Errors
///
/// Fails when no scenario has this name.
pub fn named(name: &str) -> Result<ScenarioSpec, super::SpecError> {
    registry()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| super::SpecError::UnknownScenario(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_valid() {
        let all = registry();
        assert!(all.len() >= 8, "need at least 8 named scenarios");
        for spec in &all {
            spec.validate().expect("registry spec validates");
            assert!(
                !spec.description.is_empty(),
                "{} lacks a description",
                spec.name
            );
        }
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), all.len(), "names must be unique");
        for figure in [
            "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
        ] {
            assert!(named(figure).is_ok(), "{figure} missing");
        }
        for chaos in [
            "chaos-controller-crash",
            "chaos-crash-loop",
            "chaos-config-rollout",
            "chaos-secondary-churn",
            "chaos-churn-storm",
            "chaos-connection-flood",
            "chaos-quota-exhaustion",
        ] {
            let spec = named(chaos).unwrap_or_else(|_| panic!("{chaos} missing"));
            assert!(!spec.fault.is_empty(), "{chaos} should inject faults");
        }
        let flood = named("chaos-connection-flood").expect("flood missing");
        assert!(
            flood.resilience.admission.is_some(),
            "the flood scenario sheds through admission control"
        );
        let hedged = named("graph-hedged").expect("graph-hedged missing");
        assert!(
            hedged.resilience.hedge.is_some() && hedged.resilience.propagate_deadlines,
            "graph-hedged runs the full resilience policy"
        );
        assert_eq!(hedged.workload.class_label(), "service-graph");
        for sweep in ["poll-sensitivity", "mem-kill", "tenant-io-limits"] {
            let spec = named(sweep).unwrap_or_else(|_| panic!("{sweep} missing"));
            let cells = spec.expand_sweep().expect("sweep expands");
            assert!(cells.len() >= 2, "{sweep} should be a real grid");
        }
        for graph in ["graph-chain", "graph-fanout"] {
            let spec = named(graph).unwrap_or_else(|_| panic!("{graph} missing"));
            assert_eq!(spec.workload.class_label(), "service-graph", "{graph}");
            spec.workload
                .as_graph()
                .expect("graph workload")
                .check_shape()
                .expect("registered graph is well-formed");
        }
        let prod = named("fleet-production").expect("fleet-production missing");
        assert_eq!(prod.telemetry, TelemetrySpec::Sketch);
        match &prod.target {
            super::super::TargetSpec::Fleet {
                fleet_machines,
                sampled_machines,
                minutes,
                production,
                ..
            } => {
                let p = production.expect("production extensions on");
                assert!(p.heterogeneous_shapes && p.tenant_churn);
                assert_eq!(minutes * p.minute_stride, 1_440, "covers a full 24h day");
                assert!(
                    minutes * sampled_machines >= 1_000,
                    "production run simulates at least 1000 boxes"
                );
                assert!(*fleet_machines >= 1_000);
            }
            other => panic!("fleet-production should be a fleet, got {}", other.kind()),
        }
        let dual = named("dual-primary-arbitration").expect("dual-primary missing");
        match &dual.target {
            super::super::TargetSpec::MultiBox { services } => {
                assert_eq!(services.len(), 2, "two colocated primaries");
            }
            other => panic!("dual-primary should be multi-box, got {}", other.kind()),
        }
        assert!(matches!(
            named("no-such-scenario"),
            Err(super::super::SpecError::UnknownScenario(_))
        ));
    }
}
