//! Token buckets for static rate limits.
//!
//! PerfIso enforces static per-process I/O caps (HDFS replication at
//! 20 MB/s, HDFS clients at 60 MB/s, and the cluster experiment's
//! 100 MB/s / 20 IOPS throttles) with token buckets: capacity refills at the
//! configured rate up to one burst window.

use simcore::{SimDuration, SimTime};

/// A token bucket refilling at `rate` tokens/second with a fixed burst cap.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use simdisk::TokenBucket;
///
/// // 100 tokens/s, burst of 10.
/// let mut b = TokenBucket::new(100.0, 10.0, SimTime::ZERO);
/// assert!(b.try_consume(10.0, SimTime::ZERO));
/// assert!(!b.try_consume(1.0, SimTime::ZERO));
/// // 100ms later, 10 tokens have refilled.
/// assert!(b.try_consume(10.0, SimTime::from_millis(100)));
/// ```
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec > 0` and `burst > 0`.
    pub fn new(rate_per_sec: f64, burst: f64, now: SimTime) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "bad rate {rate_per_sec}"
        );
        assert!(burst > 0.0 && burst.is_finite(), "bad burst {burst}");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last = now;
    }

    /// Current token count at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Consumes `amount` tokens if available; returns success.
    pub fn try_consume(&mut self, amount: f64, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// Time until `amount` tokens will be available (zero if already).
    ///
    /// Requests larger than the burst are allowed to overdraw down to a
    /// single burst's worth of debt; this keeps huge writes schedulable.
    pub fn time_until(&mut self, amount: f64, now: SimTime) -> SimDuration {
        self.refill(now);
        let need = amount.min(self.burst);
        if self.tokens >= need {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64((need - self.tokens) / self.rate_per_sec)
    }

    /// Forcibly consumes `amount`, allowing the balance to go negative
    /// (used after `time_until` says the wait has elapsed).
    pub fn consume_saturating(&mut self, amount: f64, now: SimTime) {
        self.refill(now);
        self.tokens -= amount;
        // Bound the debt to one burst so a single huge request cannot stall
        // the owner forever.
        self.tokens = self.tokens.max(-self.burst);
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let mut b = TokenBucket::new(10.0, 5.0, SimTime::ZERO);
        assert_eq!(b.available(SimTime::ZERO), 5.0);
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 100.0, SimTime::ZERO);
        assert!(b.try_consume(100.0, SimTime::ZERO));
        let avail = b.available(SimTime::from_millis(500));
        assert!((avail - 5.0).abs() < 1e-6, "avail {avail}");
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = TokenBucket::new(1000.0, 10.0, SimTime::ZERO);
        let avail = b.available(SimTime::from_secs(100));
        assert_eq!(avail, 10.0);
    }

    #[test]
    fn time_until_is_exact() {
        let mut b = TokenBucket::new(10.0, 10.0, SimTime::ZERO);
        assert!(b.try_consume(10.0, SimTime::ZERO));
        let wait = b.time_until(5.0, SimTime::ZERO);
        assert_eq!(wait, SimDuration::from_millis(500));
        // After waiting, the consume must succeed.
        assert!(b.try_consume(5.0, SimTime::ZERO + wait));
    }

    #[test]
    fn oversized_requests_overdraw() {
        let mut b = TokenBucket::new(10.0, 10.0, SimTime::ZERO);
        // A 100-token request only waits for one burst's worth.
        let wait = b.time_until(100.0, SimTime::ZERO);
        assert_eq!(wait, SimDuration::ZERO);
        b.consume_saturating(100.0, SimTime::ZERO);
        // Debt is bounded to -burst.
        assert!(b.available(SimTime::ZERO) >= -10.0);
    }

    #[test]
    fn enforces_long_run_rate() {
        // Consume as fast as allowed for 10s; total must be ~rate*10 + burst.
        let mut b = TokenBucket::new(100.0, 10.0, SimTime::ZERO);
        let mut consumed = 0.0;
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(10) {
            if b.try_consume(1.0, t) {
                consumed += 1.0;
            } else {
                t = t + b.time_until(1.0, t).max(SimDuration::from_micros(100));
            }
        }
        assert!(consumed <= 100.0 * 10.0 + 10.0 + 1.0, "consumed {consumed}");
        assert!(consumed >= 100.0 * 10.0 * 0.95, "consumed {consumed}");
    }
}
