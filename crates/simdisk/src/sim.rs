//! The disk simulator: volumes, queues, priorities, limits, completions.

use std::collections::VecDeque;

use simcore::{EventQueue, EventQueueState, SimDuration, SimRng, SimTime, Snapshot};

use crate::bucket::TokenBucket;
use crate::device::DeviceSpec;
use crate::request::{
    AccessPattern, IoCompletion, IoKind, IoPriority, OwnerId, PendingIo, VolumeId,
};
use crate::window::WindowCounter;

/// A static per-owner rate limit (either or both dimensions).
#[derive(Clone, Copy, Debug, Default)]
pub struct RateLimit {
    /// Bandwidth cap in bytes/second.
    pub bytes_per_sec: Option<u64>,
    /// Operation cap in IOPS.
    pub iops: Option<u64>,
}

impl RateLimit {
    /// A bandwidth-only limit.
    pub fn bandwidth(bytes_per_sec: u64) -> Self {
        RateLimit {
            bytes_per_sec: Some(bytes_per_sec),
            iops: None,
        }
    }

    /// An IOPS-only limit.
    pub fn iops(iops: u64) -> Self {
        RateLimit {
            bytes_per_sec: None,
            iops: Some(iops),
        }
    }
}

/// Specification of a striped volume.
#[derive(Clone, Debug)]
pub struct VolumeSpec {
    /// Human-readable name ("ssd-index", "hdd-batch").
    pub name: String,
    /// The devices in the stripe set.
    pub devices: Vec<DeviceSpec>,
}

impl VolumeSpec {
    /// The paper's primary volume: 4 × 500 GB SSD striped.
    pub fn paper_ssd_volume() -> Self {
        VolumeSpec {
            name: "ssd-index".into(),
            devices: vec![DeviceSpec::datacenter_ssd(); 4],
        }
    }

    /// The paper's shared batch volume: 4 × 2 TB HDD striped.
    pub fn paper_hdd_volume() -> Self {
        VolumeSpec {
            name: "hdd-batch".into(),
            devices: vec![DeviceSpec::datacenter_hdd(); 4],
        }
    }
}

/// Windowed and lifetime statistics for one owner.
#[derive(Clone, Copy, Debug)]
pub struct OwnerIoStats {
    /// Completed operations per second over the moving window.
    pub window_iops: f64,
    /// Completed bytes per second over the moving window.
    pub window_bytes_per_sec: f64,
    /// Total completed operations.
    pub total_ops: u64,
    /// Total completed bytes.
    pub total_bytes: u64,
    /// Current priority.
    pub priority: IoPriority,
}

#[derive(Clone)]
struct OwnerState {
    priority: IoPriority,
    bytes_bucket: Option<TokenBucket>,
    iops_bucket: Option<TokenBucket>,
    window_ops: WindowCounter,
    window_bytes: WindowCounter,
    total_ops: u64,
    total_bytes: u64,
}

#[derive(Clone)]
struct DeviceState {
    spec: DeviceSpec,
    busy: u32,
}

#[derive(Clone)]
struct Volume {
    devices: Vec<DeviceState>,
    queue: VecDeque<PendingIo>,
    next_rr: usize,
    window_ops: WindowCounter,
    recheck_at: Option<SimTime>,
}

#[derive(Clone, Debug)]
enum DiskTimer {
    ServiceDone {
        volume: VolumeId,
        device: usize,
        owner: OwnerId,
        token: u64,
        bytes: u64,
        submitted: SimTime,
    },
    Recheck {
        volume: VolumeId,
    },
}

/// The disk subsystem of one machine.
///
/// Drivers submit requests with an opaque token and receive
/// [`IoCompletion`]s; PerfIso adjusts owner priorities and rate limits.
///
/// # Examples
///
/// ```
/// use simcore::SimTime;
/// use simdisk::{AccessPattern, DiskSim, IoKind, IoPriority, VolumeSpec};
///
/// let mut d = DiskSim::new(42);
/// let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
/// let owner = d.register_owner(IoPriority::HIGH);
/// d.submit(SimTime::ZERO, vol, owner, IoKind::Read, 32 * 1024, AccessPattern::Random, 7);
/// while let Some(t) = d.next_timer_at() {
///     d.advance_to(t);
/// }
/// let done = d.drain_completions();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].token, 7);
/// ```
pub struct DiskSim {
    now: SimTime,
    volumes: Vec<Volume>,
    owners: Vec<OwnerState>,
    timers: EventQueue<DiskTimer>,
    completions: Vec<IoCompletion>,
    rng: SimRng,
}

const STAT_BUCKET: SimDuration = SimDuration::from_millis(100);
const STAT_BUCKETS: usize = 10;

impl DiskSim {
    /// Creates an empty disk subsystem.
    pub fn new(seed: u64) -> Self {
        DiskSim {
            now: SimTime::ZERO,
            volumes: Vec::new(),
            owners: Vec::new(),
            timers: EventQueue::with_capacity(256),
            completions: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Adds a striped volume.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no devices.
    pub fn add_volume(&mut self, spec: VolumeSpec) -> VolumeId {
        assert!(!spec.devices.is_empty(), "volume needs at least one device");
        let id = VolumeId(self.volumes.len() as u32);
        self.volumes.push(Volume {
            devices: spec
                .devices
                .iter()
                .map(|&s| DeviceState { spec: s, busy: 0 })
                .collect(),
            queue: VecDeque::new(),
            next_rr: 0,
            window_ops: WindowCounter::new(STAT_BUCKET, STAT_BUCKETS),
            recheck_at: None,
        });
        id
    }

    /// Registers an I/O owner (process) with an initial priority.
    pub fn register_owner(&mut self, priority: IoPriority) -> OwnerId {
        let id = OwnerId(self.owners.len() as u32);
        self.owners.push(OwnerState {
            priority,
            bytes_bucket: None,
            iops_bucket: None,
            window_ops: WindowCounter::new(STAT_BUCKET, STAT_BUCKETS),
            window_bytes: WindowCounter::new(STAT_BUCKET, STAT_BUCKETS),
            total_ops: 0,
            total_bytes: 0,
        });
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sets an owner's service priority (the DWRR actuator).
    pub fn set_owner_priority(&mut self, owner: OwnerId, priority: IoPriority) {
        self.owners[owner.0 as usize].priority = priority;
    }

    /// The owner's current priority.
    pub fn owner_priority(&self, owner: OwnerId) -> IoPriority {
        self.owners[owner.0 as usize].priority
    }

    /// Installs (or clears) a static rate limit on an owner.
    pub fn set_owner_limit(&mut self, now: SimTime, owner: OwnerId, limit: Option<RateLimit>) {
        self.advance_to(now);
        let o = &mut self.owners[owner.0 as usize];
        match limit {
            None => {
                o.bytes_bucket = None;
                o.iops_bucket = None;
            }
            Some(l) => {
                o.bytes_bucket = l.bytes_per_sec.map(|r| {
                    // Burst: 100ms worth of bandwidth.
                    TokenBucket::new(r as f64, (r as f64 / 10.0).max(1.0), now)
                });
                o.iops_bucket = l
                    .iops
                    .map(|r| TokenBucket::new(r as f64, (r as f64 / 10.0).max(1.0), now));
            }
        }
    }

    /// Submits a request; the completion will echo `token`.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        now: SimTime,
        volume: VolumeId,
        owner: OwnerId,
        kind: IoKind,
        bytes: u64,
        access: AccessPattern,
        token: u64,
    ) {
        self.advance_to(now);
        self.volumes[volume.0 as usize].queue.push_back(PendingIo {
            owner,
            kind,
            bytes,
            access,
            token,
            submitted: now,
        });
        self.pump(volume);
    }

    /// Statistics for one owner as of `now`.
    pub fn owner_stats(&mut self, now: SimTime, owner: OwnerId) -> OwnerIoStats {
        self.advance_to(now);
        let o = &mut self.owners[owner.0 as usize];
        OwnerIoStats {
            window_iops: o.window_ops.rate_per_sec(now),
            window_bytes_per_sec: o.window_bytes.rate_per_sec(now),
            total_ops: o.total_ops,
            total_bytes: o.total_bytes,
            priority: o.priority,
        }
    }

    /// Completed operations per second on a volume (per-drive aggregate) —
    /// the per-device monitoring granularity the paper describes.
    pub fn volume_iops(&mut self, now: SimTime, volume: VolumeId) -> f64 {
        self.advance_to(now);
        self.volumes[volume.0 as usize].window_ops.rate_per_sec(now)
    }

    /// Number of queued (not yet dispatched) requests on a volume.
    pub fn queue_depth(&self, volume: VolumeId) -> usize {
        self.volumes[volume.0 as usize].queue.len()
    }

    /// Time of the next internal event, if any.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        self.timers.peek_time()
    }

    /// Takes all pending completions.
    ///
    /// Allocation-free callers should prefer
    /// [`DiskSim::drain_completions_into`].
    pub fn drain_completions(&mut self) -> Vec<IoCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Moves all pending completions into `buf` (appending), keeping the
    /// internal buffer's capacity for reuse on the hot path.
    pub fn drain_completions_into(&mut self, buf: &mut Vec<IoCompletion>) {
        buf.append(&mut self.completions);
    }

    /// True when completions are pending.
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// Advances virtual time, processing due timers.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "time went backwards: {:?} -> {:?}",
            self.now,
            t
        );
        while let Some((at, timer)) = self.timers.pop_before(t) {
            self.now = at;
            match timer {
                DiskTimer::ServiceDone {
                    volume,
                    device,
                    owner,
                    token,
                    bytes,
                    submitted,
                } => {
                    self.on_service_done(volume, device, owner, token, bytes, submitted);
                }
                DiskTimer::Recheck { volume } => {
                    self.volumes[volume.0 as usize].recheck_at = None;
                    self.pump(volume);
                }
            }
        }
        self.now = t;
    }

    fn on_service_done(
        &mut self,
        volume: VolumeId,
        device: usize,
        owner: OwnerId,
        token: u64,
        bytes: u64,
        submitted: SimTime,
    ) {
        let now = self.now;
        self.volumes[volume.0 as usize].devices[device].busy -= 1;
        self.volumes[volume.0 as usize].window_ops.add(now, 1.0);
        {
            let o = &mut self.owners[owner.0 as usize];
            o.window_ops.add(now, 1.0);
            o.window_bytes.add(now, bytes as f64);
            o.total_ops += 1;
            o.total_bytes += bytes;
        }
        self.completions.push(IoCompletion {
            owner,
            token,
            at: now,
            latency: now.since(submitted),
        });
        self.pump(volume);
    }

    /// Returns the queue index of the best dispatchable request: highest
    /// priority first, FIFO within a priority, token buckets permitting.
    /// Also returns the earliest token-availability time over blocked
    /// requests for recheck scheduling.
    fn pick_next(&mut self, volume: VolumeId) -> (Option<usize>, Option<SimTime>) {
        let now = self.now;
        let mut best: Option<(IoPriority, usize)> = None;
        let mut earliest_ready: Option<SimTime> = None;
        // Split borrows: the queue is iterated while owner buckets mutate.
        let queue = std::mem::take(&mut self.volumes[volume.0 as usize].queue);
        for (i, req) in queue.iter().enumerate() {
            let o = &mut self.owners[req.owner.0 as usize];
            let mut wait = SimDuration::ZERO;
            if let Some(b) = o.iops_bucket.as_mut() {
                wait = wait.max(b.time_until(1.0, now));
            }
            if let Some(b) = o.bytes_bucket.as_mut() {
                wait = wait.max(b.time_until(req.bytes as f64, now));
            }
            if wait.is_zero() {
                let prio = o.priority;
                match best {
                    Some((bp, _)) if bp >= prio => {}
                    _ => best = Some((prio, i)),
                }
            } else {
                let ready = now + wait;
                earliest_ready = Some(earliest_ready.map_or(ready, |e: SimTime| e.min(ready)));
            }
        }
        self.volumes[volume.0 as usize].queue = queue;
        (best.map(|(_, i)| i), earliest_ready)
    }

    /// Dispatches queued requests onto free device channels.
    fn pump(&mut self, volume: VolumeId) {
        loop {
            let vi = volume.0 as usize;
            // Find a device with a free channel, round-robin.
            let n = self.volumes[vi].devices.len();
            let mut device = None;
            for k in 0..n {
                let idx = (self.volumes[vi].next_rr + k) % n;
                let d = &self.volumes[vi].devices[idx];
                if d.busy < d.spec.channels() {
                    device = Some(idx);
                    break;
                }
            }
            let Some(device) = device else { return };
            let (pick, earliest_ready) = self.pick_next(volume);
            match pick {
                None => {
                    // Nothing dispatchable; schedule a recheck if requests
                    // are waiting on tokens.
                    if let Some(ready) = earliest_ready {
                        let v = &mut self.volumes[vi];
                        if v.recheck_at.is_none_or(|at| at > ready) {
                            v.recheck_at = Some(ready);
                            self.timers.push(ready, DiskTimer::Recheck { volume });
                        }
                    }
                    return;
                }
                Some(i) => {
                    let req = self.volumes[vi].queue.remove(i).expect("picked index");
                    // Consume tokens (overdraw allowed for oversized requests).
                    let now = self.now;
                    {
                        let o = &mut self.owners[req.owner.0 as usize];
                        if let Some(b) = o.iops_bucket.as_mut() {
                            b.consume_saturating(1.0, now);
                        }
                        if let Some(b) = o.bytes_bucket.as_mut() {
                            b.consume_saturating(req.bytes as f64, now);
                        }
                    }
                    let service = {
                        let spec = self.volumes[vi].devices[device].spec;
                        spec.service_time(req.kind, req.access, req.bytes, &mut self.rng)
                    };
                    self.volumes[vi].devices[device].busy += 1;
                    self.volumes[vi].next_rr = (device + 1) % n;
                    self.timers.push(
                        self.now + service,
                        DiskTimer::ServiceDone {
                            volume,
                            device,
                            owner: req.owner,
                            token: req.token,
                            bytes: req.bytes,
                            submitted: req.submitted,
                        },
                    );
                }
            }
        }
    }
}

/// A [`Snapshot::save`]d deep copy of a [`DiskSim`]'s dynamic state:
/// per-volume device channels and queues, per-owner buckets and windowed
/// stats, the timer wheel, pending completions, and the RNG.
pub struct DiskSimState {
    now: SimTime,
    volumes: Vec<Volume>,
    owners: Vec<OwnerState>,
    timers: EventQueueState<DiskTimer>,
    completions: Vec<IoCompletion>,
    rng: SimRng,
}

impl Snapshot for DiskSim {
    type State = DiskSimState;

    fn save(&self) -> DiskSimState {
        DiskSimState {
            now: self.now,
            volumes: self.volumes.clone(),
            owners: self.owners.clone(),
            timers: self.timers.save(),
            completions: self.completions.clone(),
            rng: self.rng.clone(),
        }
    }

    fn restore(&mut self, state: &DiskSimState) {
        self.now = state.now;
        self.volumes.clone_from(&state.volumes);
        self.owners.clone_from(&state.owners);
        self.timers.restore(&state.timers);
        self.completions.clone_from(&state.completions);
        self.rng = state.rng.clone();
    }
}

impl std::fmt::Debug for DiskSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskSim")
            .field("now", &self.now)
            .field("volumes", &self.volumes.len())
            .field("owners", &self.owners.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(d: &mut DiskSim) -> Vec<IoCompletion> {
        while let Some(t) = d.next_timer_at() {
            d.advance_to(t);
        }
        d.drain_completions()
    }

    #[test]
    fn single_read_completes() {
        let mut d = DiskSim::new(1);
        let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
        let o = d.register_owner(IoPriority::HIGH);
        d.submit(
            SimTime::ZERO,
            vol,
            o,
            IoKind::Read,
            32 << 10,
            AccessPattern::Random,
            5,
        );
        let done = drain_all(&mut d);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 5);
        assert!(done[0].latency < SimDuration::from_millis(1));
    }

    #[test]
    fn striping_parallelises() {
        // 8 random HDD reads on a 4-disk stripe finish ~4x faster than on 1.
        let mut one = DiskSim::new(2);
        let v1 = one.add_volume(VolumeSpec {
            name: "hdd1".into(),
            devices: vec![DeviceSpec::datacenter_hdd()],
        });
        let o1 = one.register_owner(IoPriority::LOW);
        let mut four = DiskSim::new(2);
        let v4 = four.add_volume(VolumeSpec::paper_hdd_volume());
        let o4 = four.register_owner(IoPriority::LOW);
        for i in 0..8 {
            one.submit(
                SimTime::ZERO,
                v1,
                o1,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
            four.submit(
                SimTime::ZERO,
                v4,
                o4,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        let d1 = drain_all(&mut one);
        let d4 = drain_all(&mut four);
        let t1 = d1.iter().map(|c| c.at).max().unwrap();
        let t4 = d4.iter().map(|c| c.at).max().unwrap();
        assert!(
            t4.as_nanos() * 2 < t1.as_nanos(),
            "stripe {t4:?} must be much faster than single {t1:?}"
        );
    }

    #[test]
    fn priority_order_under_contention() {
        let mut d = DiskSim::new(3);
        let vol = d.add_volume(VolumeSpec {
            name: "hdd1".into(),
            devices: vec![DeviceSpec::datacenter_hdd()],
        });
        let low = d.register_owner(IoPriority::LOW);
        let high = d.register_owner(IoPriority::HIGH);
        // Fill the single channel, then queue low- and high-priority requests.
        d.submit(
            SimTime::ZERO,
            vol,
            low,
            IoKind::Read,
            8 << 10,
            AccessPattern::Random,
            0,
        );
        for i in 1..=3 {
            d.submit(
                SimTime::ZERO,
                vol,
                low,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        d.submit(
            SimTime::ZERO,
            vol,
            high,
            IoKind::Read,
            8 << 10,
            AccessPattern::Random,
            100,
        );
        let done = drain_all(&mut d);
        let order: Vec<u64> = done.iter().map(|c| c.token).collect();
        // The high-priority request jumps the queue (after the in-service one).
        assert_eq!(order[1], 100, "order {order:?}");
    }

    #[test]
    fn bandwidth_limit_enforced() {
        let mut d = DiskSim::new(4);
        let vol = d.add_volume(VolumeSpec::paper_hdd_volume());
        let o = d.register_owner(IoPriority::LOW);
        // 10 MB/s cap; submit 100 x 1 MB sequential writes = 100 MB.
        d.set_owner_limit(SimTime::ZERO, o, Some(RateLimit::bandwidth(10 << 20)));
        for i in 0..100 {
            d.submit(
                SimTime::ZERO,
                vol,
                o,
                IoKind::Write,
                1 << 20,
                AccessPattern::Sequential,
                i,
            );
        }
        let done = drain_all(&mut d);
        assert_eq!(done.len(), 100);
        let finish = done.iter().map(|c| c.at).max().unwrap();
        // 100 MB at 10 MB/s is ~10s (burst advances it slightly).
        let secs = finish.as_secs_f64();
        assert!(secs > 8.5 && secs < 11.5, "took {secs}s");
    }

    #[test]
    fn iops_limit_enforced() {
        let mut d = DiskSim::new(5);
        let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
        let o = d.register_owner(IoPriority::LOW);
        d.set_owner_limit(SimTime::ZERO, o, Some(RateLimit::iops(20)));
        for i in 0..40 {
            d.submit(
                SimTime::ZERO,
                vol,
                o,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        let done = drain_all(&mut d);
        let finish = done.iter().map(|c| c.at).max().unwrap();
        let secs = finish.as_secs_f64();
        assert!(secs > 1.6 && secs < 2.5, "40 ops at 20 IOPS took {secs}s");
    }

    #[test]
    fn unlimited_owner_is_not_throttled() {
        let mut d = DiskSim::new(6);
        let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
        let o = d.register_owner(IoPriority::HIGH);
        for i in 0..32 {
            d.submit(
                SimTime::ZERO,
                vol,
                o,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        let done = drain_all(&mut d);
        let finish = done.iter().map(|c| c.at).max().unwrap();
        assert!(finish < SimTime::from_millis(5), "finished at {finish}");
    }

    #[test]
    fn stats_track_completions() {
        let mut d = DiskSim::new(7);
        let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
        let o = d.register_owner(IoPriority::HIGH);
        for i in 0..10 {
            d.submit(
                SimTime::from_millis(i * 10),
                vol,
                o,
                IoKind::Read,
                64 << 10,
                AccessPattern::Random,
                i,
            );
        }
        while let Some(t) = d.next_timer_at() {
            d.advance_to(t);
        }
        let now = d.now();
        let s = d.owner_stats(now, o);
        assert_eq!(s.total_ops, 10);
        assert_eq!(s.total_bytes, 10 * (64 << 10));
        assert!(s.window_iops > 0.0);
        assert!(d.volume_iops(now, vol) > 0.0);
    }

    #[test]
    fn clearing_limit_restores_throughput() {
        let mut d = DiskSim::new(8);
        let vol = d.add_volume(VolumeSpec::paper_ssd_volume());
        let o = d.register_owner(IoPriority::LOW);
        d.set_owner_limit(SimTime::ZERO, o, Some(RateLimit::iops(1)));
        d.set_owner_limit(SimTime::ZERO, o, None);
        for i in 0..16 {
            d.submit(
                SimTime::ZERO,
                vol,
                o,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        let done = drain_all(&mut d);
        let finish = done.iter().map(|c| c.at).max().unwrap();
        assert!(finish < SimTime::from_millis(5));
    }

    #[test]
    fn queue_depth_visible() {
        let mut d = DiskSim::new(9);
        let vol = d.add_volume(VolumeSpec {
            name: "hdd1".into(),
            devices: vec![DeviceSpec::datacenter_hdd()],
        });
        let o = d.register_owner(IoPriority::LOW);
        for i in 0..5 {
            d.submit(
                SimTime::ZERO,
                vol,
                o,
                IoKind::Read,
                8 << 10,
                AccessPattern::Random,
                i,
            );
        }
        // One in service, four queued.
        assert_eq!(d.queue_depth(vol), 4);
    }
}
