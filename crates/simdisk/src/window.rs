//! Sliding-window counters for per-owner I/O statistics.
//!
//! The DWRR controller (§4.1) uses "the number of completed I/O requests
//! per second (or IOPS) per drive, and ... a moving average". This module
//! provides the moving window: a ring of fixed-width buckets rotated by
//! virtual time.

use simcore::{SimDuration, SimTime};

/// A sliding-window event counter with fixed-width buckets.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use simdisk::window::WindowCounter;
///
/// let mut w = WindowCounter::new(SimDuration::from_millis(100), 10);
/// w.add(SimTime::from_millis(50), 1.0);
/// w.add(SimTime::from_millis(150), 2.0);
/// assert_eq!(w.sum(SimTime::from_millis(200)), 3.0);
/// // After the window slides past the first bucket, only 2.0 remains.
/// assert_eq!(w.sum(SimTime::from_millis(1_050)), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct WindowCounter {
    bucket_width: SimDuration,
    buckets: Vec<f64>,
    /// Absolute index of the bucket currently at `head`.
    head_bucket: u64,
    head: usize,
}

impl WindowCounter {
    /// Creates a window of `n_buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `n_buckets` is zero.
    pub fn new(bucket_width: SimDuration, n_buckets: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        WindowCounter {
            bucket_width,
            buckets: vec![0.0; n_buckets],
            head_bucket: 0,
            head: 0,
        }
    }

    /// Total window span.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_nanos(self.bucket_width.as_nanos() * self.buckets.len() as u64)
    }

    fn rotate_to(&mut self, now: SimTime) {
        let target = now.as_nanos() / self.bucket_width.as_nanos();
        if target <= self.head_bucket {
            return;
        }
        let steps = (target - self.head_bucket).min(self.buckets.len() as u64);
        for _ in 0..steps {
            self.head = (self.head + 1) % self.buckets.len();
            self.buckets[self.head] = 0.0;
        }
        self.head_bucket = target;
    }

    /// Adds `amount` at time `now`.
    pub fn add(&mut self, now: SimTime, amount: f64) {
        self.rotate_to(now);
        self.buckets[self.head] += amount;
    }

    /// Sum over the window as of `now`.
    pub fn sum(&mut self, now: SimTime) -> f64 {
        self.rotate_to(now);
        self.buckets.iter().sum()
    }

    /// Windowed per-second rate as of `now`.
    pub fn rate_per_sec(&mut self, now: SimTime) -> f64 {
        let s = self.sum(now);
        s / self.span().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_within_window() {
        let mut w = WindowCounter::new(SimDuration::from_millis(100), 10);
        for i in 0..10 {
            w.add(SimTime::from_millis(i * 100 + 1), 1.0);
        }
        assert_eq!(w.sum(SimTime::from_millis(999)), 10.0);
    }

    #[test]
    fn old_buckets_expire() {
        let mut w = WindowCounter::new(SimDuration::from_millis(100), 10);
        w.add(SimTime::from_millis(0), 5.0);
        assert_eq!(w.sum(SimTime::from_millis(900)), 5.0);
        assert_eq!(w.sum(SimTime::from_millis(1_100)), 0.0);
    }

    #[test]
    fn rate_is_per_second() {
        let mut w = WindowCounter::new(SimDuration::from_millis(100), 10);
        for i in 0..100 {
            w.add(SimTime::from_millis(i * 10), 1.0);
        }
        let r = w.rate_per_sec(SimTime::from_millis(999));
        assert!((r - 100.0).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn long_gaps_clear_everything() {
        let mut w = WindowCounter::new(SimDuration::from_millis(100), 4);
        w.add(SimTime::from_millis(0), 7.0);
        assert_eq!(w.sum(SimTime::from_secs(100)), 0.0);
        w.add(SimTime::from_secs(100), 3.0);
        assert_eq!(w.sum(SimTime::from_secs(100)), 3.0);
    }
}
