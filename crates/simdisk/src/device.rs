//! Device service-time models.
//!
//! Two device families matter to the paper: SSDs (the primary's index
//! volume, low-latency random reads, channel parallelism) and HDDs (the
//! shared batch volume, seek-dominated random access, decent sequential
//! bandwidth).

use serde::{Deserialize, Serialize};
use simcore::{dist::LogNormal, dist::Sample, SimDuration, SimRng};

use crate::request::{AccessPattern, IoKind};

/// The family-specific performance parameters of one device.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A solid-state drive: fixed access latency, high internal parallelism.
    Ssd {
        /// Base access latency for reads.
        read_latency: SimDuration,
        /// Base access latency for writes.
        write_latency: SimDuration,
        /// Sustained transfer bandwidth in bytes/second.
        bandwidth: u64,
        /// Concurrent in-flight operations the device sustains.
        channels: u32,
    },
    /// A spinning disk: seek + rotational latency for random access.
    Hdd {
        /// Average seek time for random access.
        seek: SimDuration,
        /// Average rotational latency for random access.
        rotational: SimDuration,
        /// Sustained transfer bandwidth in bytes/second.
        bandwidth: u64,
    },
}

/// A device specification (kind + service-time jitter).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Performance parameters.
    pub kind: DeviceKind,
    /// Log-normal sigma applied multiplicatively to each service time.
    pub jitter_sigma: f64,
}

impl DeviceSpec {
    /// A datacenter SATA SSD (~500 GB class, as in the paper's servers).
    pub fn datacenter_ssd() -> Self {
        DeviceSpec {
            kind: DeviceKind::Ssd {
                read_latency: SimDuration::from_micros(80),
                write_latency: SimDuration::from_micros(50),
                bandwidth: 450 * 1024 * 1024,
                channels: 8,
            },
            jitter_sigma: 0.15,
        }
    }

    /// A 2 TB 7200rpm datacenter HDD.
    pub fn datacenter_hdd() -> Self {
        DeviceSpec {
            kind: DeviceKind::Hdd {
                seek: SimDuration::from_millis(6),
                rotational: SimDuration::from_micros(4_100),
                bandwidth: 160 * 1024 * 1024,
            },
            jitter_sigma: 0.2,
        }
    }

    /// Concurrent operations this device sustains.
    pub fn channels(&self) -> u32 {
        match self.kind {
            DeviceKind::Ssd { channels, .. } => channels,
            DeviceKind::Hdd { .. } => 1,
        }
    }

    /// Samples the service time of one request.
    pub fn service_time(
        &self,
        kind: IoKind,
        access: AccessPattern,
        bytes: u64,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = match self.kind {
            DeviceKind::Ssd {
                read_latency,
                write_latency,
                bandwidth,
                ..
            } => {
                let lat = match kind {
                    IoKind::Read => read_latency,
                    IoKind::Write => write_latency,
                };
                lat + transfer_time(bytes, bandwidth)
            }
            DeviceKind::Hdd {
                seek,
                rotational,
                bandwidth,
            } => {
                let positioning = match access {
                    AccessPattern::Random => seek + rotational,
                    // Sequential I/O still pays a small per-op overhead.
                    AccessPattern::Sequential => SimDuration::from_micros(300),
                };
                positioning + transfer_time(bytes, bandwidth)
            }
        };
        if self.jitter_sigma <= 0.0 {
            return base;
        }
        let mult = LogNormal::unit_median(self.jitter_sigma).sample(rng);
        base.mul_f64(mult)
    }
}

fn transfer_time(bytes: u64, bandwidth: u64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / bandwidth as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_random_read_is_fast() {
        let spec = DeviceSpec::datacenter_ssd();
        let mut rng = SimRng::seed_from_u64(1);
        let t = spec.service_time(IoKind::Read, AccessPattern::Random, 32 * 1024, &mut rng);
        assert!(t < SimDuration::from_millis(1), "ssd read took {t}");
        assert!(t > SimDuration::from_micros(50), "ssd read took {t}");
    }

    #[test]
    fn hdd_random_is_seek_dominated() {
        let spec = DeviceSpec::datacenter_hdd();
        let mut rng = SimRng::seed_from_u64(2);
        let t = spec.service_time(IoKind::Read, AccessPattern::Random, 8 * 1024, &mut rng);
        assert!(t > SimDuration::from_millis(5), "hdd random read took {t}");
    }

    #[test]
    fn hdd_sequential_avoids_seek() {
        let spec = DeviceSpec::datacenter_hdd();
        let mut rng = SimRng::seed_from_u64(3);
        let seq = spec.service_time(IoKind::Write, AccessPattern::Sequential, 1 << 20, &mut rng);
        let rnd = spec.service_time(IoKind::Write, AccessPattern::Random, 1 << 20, &mut rng);
        assert!(seq < rnd, "seq {seq} must beat random {rnd}");
    }

    #[test]
    fn larger_transfers_take_longer() {
        let spec = DeviceSpec::datacenter_ssd();
        let mut rng = SimRng::seed_from_u64(4);
        let mut small_total = SimDuration::ZERO;
        let mut big_total = SimDuration::ZERO;
        for _ in 0..64 {
            small_total +=
                spec.service_time(IoKind::Read, AccessPattern::Random, 4 << 10, &mut rng);
            big_total += spec.service_time(IoKind::Read, AccessPattern::Random, 4 << 20, &mut rng);
        }
        assert!(big_total > small_total);
    }

    #[test]
    fn channels_reflect_kind() {
        assert_eq!(DeviceSpec::datacenter_ssd().channels(), 8);
        assert_eq!(DeviceSpec::datacenter_hdd().channels(), 1);
    }
}
