//! I/O request and completion types.

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Identifies a volume within a [`crate::DiskSim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VolumeId(pub u32);

/// Identifies an I/O owner (a process, in the paper's terms).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OwnerId(pub u32);

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum IoKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

/// Sequential or random access, which matters enormously for HDDs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential access: no seek penalty on HDDs.
    Sequential,
    /// Random access: full seek + rotational latency on HDDs.
    Random,
}

/// Service priority of an owner's requests; higher is served first.
///
/// PerfIso's DWRR throttler nudges these up and down based on computed
/// deficits (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct IoPriority(pub u8);

impl IoPriority {
    /// Highest priority.
    pub const MAX: IoPriority = IoPriority(7);
    /// Default priority for latency-sensitive owners.
    pub const HIGH: IoPriority = IoPriority(6);
    /// Default priority for best-effort owners.
    pub const LOW: IoPriority = IoPriority(2);
    /// Lowest priority.
    pub const MIN: IoPriority = IoPriority(0);

    /// Priority one step higher, saturating at [`IoPriority::MAX`].
    pub fn raise(self) -> IoPriority {
        IoPriority((self.0 + 1).min(Self::MAX.0))
    }

    /// Priority one step lower, saturating at [`IoPriority::MIN`].
    pub fn lower(self) -> IoPriority {
        IoPriority(self.0.saturating_sub(1))
    }
}

/// A pending request inside the simulator.
#[derive(Clone, Debug)]
pub(crate) struct PendingIo {
    pub owner: OwnerId,
    pub kind: IoKind,
    pub bytes: u64,
    pub access: AccessPattern,
    pub token: u64,
    pub submitted: SimTime,
}

/// A completed request, delivered to the driver.
#[derive(Clone, Copy, Debug)]
pub struct IoCompletion {
    /// The owner that issued the request.
    pub owner: OwnerId,
    /// The opaque token passed at submission.
    pub token: u64,
    /// Completion time.
    pub at: SimTime,
    /// End-to-end latency (queueing + service).
    pub latency: simcore::SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_raise_lower_saturate() {
        assert_eq!(IoPriority::MAX.raise(), IoPriority::MAX);
        assert_eq!(IoPriority::MIN.lower(), IoPriority::MIN);
        assert_eq!(IoPriority(3).raise(), IoPriority(4));
        assert_eq!(IoPriority(3).lower(), IoPriority(2));
        assert!(IoPriority::HIGH > IoPriority::LOW);
    }
}
