//! Storage simulator.
//!
//! Models the paper's storage layout (§5.2–5.3): a striped SSD volume that
//! the primary uses exclusively for index reads, and a striped HDD volume
//! shared between primary logging and the secondary's batch I/O. Provides
//! the control surface PerfIso's I/O throttling needs (§4.1):
//!
//! - per-owner **I/O priorities** (adjusted by the DWRR controller),
//! - per-owner **token-bucket rate limits** (bandwidth and IOPS caps, e.g.
//!   HDFS replication at 20 MB/s),
//! - per-device **completed-IOPS statistics** over a moving window — the
//!   paper's monitoring is per-device, *not* per-process, which is exactly
//!   why DWRR needs the demand estimate.
//!
//! Requests are submitted with an opaque token; completions echo it so the
//! embedding simulation can wake the blocked thread.

pub mod bucket;
pub mod device;
pub mod request;
pub mod sim;
pub mod window;

pub use bucket::TokenBucket;
pub use device::{DeviceKind, DeviceSpec};
pub use request::{AccessPattern, IoCompletion, IoKind, IoPriority, OwnerId, VolumeId};
pub use sim::{DiskSim, DiskSimState, OwnerIoStats, RateLimit, VolumeSpec};
