//! End-to-end isolation matrix: the paper's headline behaviours, spanning
//! the scheduler, the disk substrate, the service model, the workloads,
//! and the PerfIso controller.
//!
//! Each test runs one or two complete single-box experiments at reduced
//! scale and checks the *shape* the paper reports, not exact numbers.

use scenarios::{blind_isolation, cycle_cap, no_isolation, standalone, static_cores, Scale};
use simcore::SimDuration;
use workloads::BullyIntensity;

fn quick() -> Scale {
    Scale::quick()
}

#[test]
fn standalone_profile_matches_calibration_bands() {
    // §6.1.1: p50 ≈ 4 ms and p99 ≈ 12 ms at both loads; idle ≈ 80 %/60 %.
    for (qps, idle_lo, idle_hi) in [(2_000.0, 0.72, 0.86), (4_000.0, 0.48, 0.66)] {
        let r = standalone(qps, 42, quick());
        let p50 = r.latency.p50.as_millis_f64();
        let p99 = r.latency.p99.as_millis_f64();
        assert!(
            (3.0..=5.5).contains(&p50),
            "{qps} QPS p50 {p50} outside band"
        );
        assert!(
            (8.0..=16.0).contains(&p99),
            "{qps} QPS p99 {p99} outside band"
        );
        assert!(r.drop_ratio() < 0.002, "{qps} QPS drops {}", r.drop_ratio());
        let idle = r.breakdown.idle_fraction();
        assert!(
            (idle_lo..=idle_hi).contains(&idle),
            "{qps} QPS idle {idle} outside [{idle_lo}, {idle_hi}]"
        );
    }
}

#[test]
fn standalone_latency_is_load_invariant() {
    // The paper reports the *same* 4 ms / 12 ms profile at 2 000 and
    // 4 000 QPS: the machine is provisioned so far below saturation that
    // doubling the load leaves the latency distribution unchanged.
    let r2 = standalone(2_000.0, 7, quick());
    let r4 = standalone(4_000.0, 7, quick());
    let dp99 = (r4.latency.p99.as_millis_f64() - r2.latency.p99.as_millis_f64()).abs();
    assert!(dp99 < 1.5, "p99 moved {dp99} ms between loads");
}

#[test]
fn unrestricted_high_bully_destroys_the_tail() {
    // Fig 4: the 48-thread bully with no isolation produces an
    // order-of-magnitude p99 collapse and a substantial timeout rate.
    let base = standalone(2_000.0, 21, quick());
    let colo = no_isolation(BullyIntensity::High, 2_000.0, 21, quick());
    assert!(
        colo.latency.p99 > base.latency.p99.mul_f64(5.0),
        "expected ≫5× degradation: {} vs {}",
        colo.latency.p99,
        base.latency.p99
    );
    assert!(
        colo.drop_ratio() > 0.02,
        "high bully must force timeouts, got {}",
        colo.drop_ratio()
    );
}

#[test]
fn mid_bully_inflates_tail_but_keeps_queries() {
    // Fig 4 mid bars: a 24-thread bully hurts the tail but the system keeps
    // completing queries (the paper reports zero drops for mid).
    let colo = no_isolation(BullyIntensity::Mid, 2_000.0, 22, quick());
    assert!(
        colo.drop_ratio() < 0.01,
        "mid bully should not drop, got {}",
        colo.drop_ratio()
    );
    let p99 = colo.latency.p99.as_millis_f64();
    assert!(p99 < 40.0, "mid bully should not collapse: p99 {p99}");
}

#[test]
fn blind_isolation_meets_the_slo_at_both_loads() {
    // Fig 5 with 8 buffer cores: p99 within 1 ms of standalone, no drops,
    // and the machine goes from mostly idle to mostly busy.
    for qps in [2_000.0, 4_000.0] {
        let base = standalone(qps, 33, quick());
        let iso = blind_isolation(8, qps, 33, quick());
        let slo = telemetry::slo::RelativeSlo::paper_default(base.latency.p99);
        let v = slo.check(iso.latency.p99);
        assert!(
            v.met,
            "{qps} QPS SLO violated: {} vs base {}",
            iso.latency.p99, base.latency.p99
        );
        assert!(iso.drop_ratio() < 0.002);
        assert!(
            iso.breakdown.utilization() > base.breakdown.utilization() + 0.25,
            "colocation must raise utilization ({} -> {})",
            base.breakdown.utilization(),
            iso.breakdown.utilization()
        );
    }
}

#[test]
fn four_buffer_cores_protect_less_than_eight() {
    // Fig 5: 4 buffer cores show visibly more degradation than 8.
    let base = standalone(2_000.0, 44, quick());
    let b4 = blind_isolation(4, 2_000.0, 44, quick());
    let b8 = blind_isolation(8, 2_000.0, 44, quick());
    let d4 = b4.latency.p99.saturating_sub(base.latency.p99);
    let d8 = b8.latency.p99.saturating_sub(base.latency.p99);
    assert!(d4 > d8, "B=4 degradation {d4:?} must exceed B=8 {d8:?}");
}

#[test]
fn blind_isolation_beats_static_cores_on_utilization() {
    // Fig 8 takeaway: both protect the tail, but blind isolation leaves
    // less CPU idle and gives the secondary more work than the peak-safe
    // 8-core static restriction.
    let blind = blind_isolation(8, 2_000.0, 55, quick());
    let stat = static_cores(8, 2_000.0, 55, quick());
    assert!(
        blind.breakdown.idle_fraction() + 0.05 < stat.breakdown.idle_fraction(),
        "blind idle {} must be well below static idle {}",
        blind.breakdown.idle_fraction(),
        stat.breakdown.idle_fraction()
    );
    assert!(
        blind.secondary_cpu > stat.secondary_cpu,
        "blind secondary progress {} must exceed static {}",
        blind.secondary_cpu,
        stat.secondary_cpu
    );
}

#[test]
fn static_cores_protect_at_peak_only_when_small() {
    // Fig 6: an 8-core secondary is safe at peak load; handing it half the
    // machine is not.
    let base = standalone(4_000.0, 66, quick());
    let small = static_cores(8, 4_000.0, 66, quick());
    let d = small.latency.p99.saturating_sub(base.latency.p99);
    assert!(
        d < SimDuration::from_millis(2),
        "8-core secondary degradation {d}"
    );
    let large = static_cores(24, 4_000.0, 66, quick());
    assert!(
        large.latency.p99 > small.latency.p99,
        "24-core secondary must hurt more than 8-core"
    );
}

#[test]
fn cycle_caps_fail_to_protect_the_tail() {
    // Fig 7 / Fig 8: duty-cycle throttling degrades the tail even at a 45 %
    // cap, and well beyond what blind isolation shows.
    let base = standalone(2_000.0, 77, quick());
    let blind = blind_isolation(8, 2_000.0, 77, quick());
    let cap = cycle_cap(0.45, 2_000.0, 77, quick());
    let d_cap = cap.latency.p99.saturating_sub(base.latency.p99);
    let d_blind = blind.latency.p99.saturating_sub(base.latency.p99);
    assert!(
        d_cap > d_blind + SimDuration::from_millis(3),
        "cycle cap degradation {d_cap} must dwarf blind isolation {d_blind}"
    );
    let slo = telemetry::slo::RelativeSlo::paper_default(base.latency.p99);
    assert!(
        !slo.check(cap.latency.p99).met,
        "a 45% cycle cap must violate the SLO"
    );
}

#[test]
fn cycle_cap_starves_the_secondary_anyway() {
    // §6.1.4: on top of failing the SLO, cycle caps give the secondary the
    // least work of all policies.
    let cap = cycle_cap(0.05, 2_000.0, 88, quick());
    let blind = blind_isolation(8, 2_000.0, 88, quick());
    assert!(
        cap.secondary_cpu.as_secs_f64() < blind.secondary_cpu.as_secs_f64() * 0.25,
        "5% cap secondary CPU {} should be a small fraction of blind's {}",
        cap.secondary_cpu,
        blind.secondary_cpu
    );
}
