//! Overload-resilience acceptance tests.
//!
//! Headline claims from the resilience subsystem, checked end to end
//! through the spec runner:
//!
//! 1. Under a 3× arrival surge, admission control sheds the excess so the
//!    *admitted* requests' p99 stays within 25 % of the steady-state p99,
//!    while the same surge with no resilience policy drives the box past
//!    its deadline (timeout drops plus a blown tail).
//! 2. Hedging straggling graph stages measurably cuts the service-graph
//!    p99 versus the identical spec with hedging disabled.
//!
//! Plus property tests over the pure policy layer: the retry schedule is
//! deterministic, monotone, and budget-bounded, and the circuit breaker
//! opens exactly at its failure threshold and always half-opens after the
//! cooldown (no stuck-open state).

use proptest::prelude::*;
use scenarios::spec::{
    self, run_spec, AdmissionSpec, FaultEvent, FaultSpec, RunOptions, ScenarioSpec,
};
use simcore::{SimDuration, SimTime};
use workloads::{BreakerPolicy, BreakerState, CircuitBreaker, RetryPolicy};

/// Base single-box scenario for the surge experiment: primary alone at a
/// moderate external load, fixed window, fixed seed.
fn surge_base(name: &str) -> scenarios::spec::ScenarioBuilder {
    ScenarioSpec::builder(name)
        .single_box(4_000.0)
        .cpu_bully(workloads::BullyIntensity::High)
        .policy(scenarios::Policy::Blind { buffer_cores: 8 })
        .custom_scale(200, 1_300)
        .seed(7)
}

/// A connection flood worth 2× the external load — 3× total arrivals —
/// covering the whole measurement window. With a high-intensity bully
/// contending for the box, 12,000 arrivals/s is well past what the
/// primary can serve (~8,000 qps), so unprotected queues grow for the
/// duration until queries blow their 360 ms deadline.
fn surge_fault() -> FaultSpec {
    FaultSpec {
        events: vec![FaultEvent::ConnectionFlood {
            at_ms: 250,
            duration_ms: 1_200,
            extra_qps: 8_000,
        }],
        ..FaultSpec::default()
    }
}

#[test]
fn shedding_holds_admitted_p99_through_3x_surge() {
    let steady = run_spec(
        &surge_base("surge-steady").build().expect("valid spec"),
        &RunOptions::serial(),
    )
    .expect("steady run");
    let shed = run_spec(
        &surge_base("surge-shed")
            .fault(surge_fault())
            .resilient(|r| {
                r.admission = Some(AdmissionSpec {
                    max_in_flight: 32,
                    queue_depth: 8,
                })
            })
            .build()
            .expect("valid spec"),
        &RunOptions::serial(),
    )
    .expect("shedding run");
    let bare = run_spec(
        &surge_base("surge-bare")
            .fault(surge_fault())
            .build()
            .expect("valid spec"),
        &RunOptions::serial(),
    )
    .expect("baseline run");

    let steady = steady.runs[0].as_single_box().expect("single box");
    let shed = shed.runs[0].as_single_box().expect("single box");
    let bare = bare.runs[0].as_single_box().expect("single box");

    // The policy actually engaged: the surge produced deterministic sheds.
    let stats = shed.resilience.as_ref().expect("resilience counters");
    assert!(stats.sheds > 0, "3x surge must trip admission control");

    // Admitted-request p99 holds within 25 % of steady state.
    let p99_steady = steady.latency.p99.as_micros_f64();
    let p99_shed = shed.latency.p99.as_micros_f64();
    assert!(
        p99_shed <= p99_steady * 1.25,
        "admitted p99 {p99_shed:.0}us blew the 25% envelope over steady {p99_steady:.0}us"
    );

    // The no-resilience baseline blows its deadline: queues grow until
    // queries hit the 360 ms timeout, so the run both drops traffic to
    // deadline expiry and lands its completed-request tail far outside
    // the envelope the shedding run holds.
    assert!(
        bare.latency.dropped > 0,
        "unprotected surge must drive queries past their deadline"
    );
    let p99_bare = bare.latency.p99.as_micros_f64();
    assert!(
        p99_bare > p99_steady * 1.25,
        "baseline p99 {p99_bare:.0}us unexpectedly inside the envelope \
         (steady {p99_steady:.0}us) — surge too weak to prove the claim"
    );
    assert!(
        p99_bare > p99_shed,
        "shedding must beat the unprotected baseline tail"
    );
    // Shedding converts deadline blowups into cheap refusals, never the
    // other way around: the protected run keeps more of its admitted
    // traffic inside the deadline than the baseline keeps overall.
    assert!(
        shed.latency.count > 0 && steady.latency.count > 0,
        "both runs completed traffic"
    );
}

#[test]
fn hedging_cuts_graph_p99() {
    let mut hedged = spec::named("graph-hedged").expect("registered scenario");
    hedged.scale = spec::ScaleSpec::Custom {
        warmup_ms: 150,
        measure_ms: 600,
    };
    hedged.validate().expect("shrunk spec stays valid");
    let mut unhedged = hedged.clone();
    unhedged.name = "graph-unhedged".into();
    unhedged.resilience.hedge = None;
    unhedged.validate().expect("hedge-free spec stays valid");

    let hedged = run_spec(&hedged, &RunOptions::serial()).expect("hedged run");
    let unhedged = run_spec(&unhedged, &RunOptions::serial()).expect("unhedged run");
    let hedged = hedged.runs[0].as_single_box().expect("single box");
    let unhedged = unhedged.runs[0].as_single_box().expect("single box");

    let stats = hedged.resilience.as_ref().expect("resilience counters");
    assert!(stats.hedges_launched > 0, "stragglers must trigger hedges");
    assert!(stats.hedges_won > 0, "some hedges must beat the original");

    let p99_hedged = hedged.latency.p99.as_micros_f64();
    let p99_unhedged = unhedged.latency.p99.as_micros_f64();
    assert!(
        p99_hedged < p99_unhedged,
        "hedging must cut the graph p99: hedged {p99_hedged:.0}us vs \
         unhedged {p99_unhedged:.0}us"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The retry-delay schedule is a pure function of (policy, seed,
    /// request): recomputing it yields the same delays, the delays never
    /// decrease across attempts, every delay is at least its un-jittered
    /// backoff, and the schedule never exceeds the attempt budget.
    #[test]
    fn prop_retry_schedule_deterministic_monotone_bounded(
        base_ms in 1u64..50,
        multiplier in 1u32..5,
        budget in 1u32..=RetryPolicy::MAX_BUDGET,
        jitter_ms in 0u64..10,
        seed in any::<u64>(),
        ridx in any::<u64>(),
    ) {
        let r = RetryPolicy {
            base_backoff: SimDuration::from_millis(base_ms),
            multiplier,
            budget,
            jitter: SimDuration::from_millis(jitter_ms),
        };
        let s = r.schedule(seed, ridx);
        prop_assert_eq!(&s, &r.schedule(seed, ridx), "schedule not deterministic");
        prop_assert!(s.len() as u32 <= budget, "schedule exceeds budget");
        prop_assert!(s.len() as u32 <= RetryPolicy::MAX_BUDGET);
        for (i, w) in s.windows(2).enumerate() {
            prop_assert!(w[1] >= w[0], "delay shrank at attempt {}", i + 2);
        }
        for (i, d) in s.iter().enumerate() {
            let k = (i + 1) as u32;
            prop_assert!(*d >= r.backoff(k), "attempt {k} waits less than its backoff");
            prop_assert!(
                *d <= r.backoff(budget) + SimDuration::from_millis(jitter_ms),
                "attempt {k} overshoots max backoff + jitter"
            );
        }
    }

    /// The breaker opens on exactly the K-th consecutive failure — never
    /// earlier — and an open breaker always half-opens once the cooldown
    /// elapses, at any probe time, so it can never get stuck open.
    #[test]
    fn prop_breaker_opens_at_k_and_always_half_opens(
        threshold in 1u32..12,
        cooldown_ms in 1u64..100,
        probe_extra_ms in 0u64..10_000,
    ) {
        let mut b = CircuitBreaker::new(&BreakerPolicy {
            threshold,
            cooldown: SimDuration::from_millis(cooldown_ms),
        });
        let t0 = SimTime::ZERO;
        for k in 1..threshold {
            prop_assert!(!b.on_failure(t0), "opened early at failure {k}");
            prop_assert!(b.allow(t0), "closed breaker must admit traffic");
        }
        prop_assert!(b.on_failure(t0), "failure {threshold} must open the breaker");
        prop_assert_eq!(b.state_at(t0), BreakerState::Open);

        // Strictly inside the cooldown the breaker fast-fails...
        if cooldown_ms > 1 {
            prop_assert!(!b.allow(SimTime::from_millis(cooldown_ms - 1)));
        }
        // ...and at (or any time past) the cooldown it half-opens and
        // admits the probe — no stuck-open state.
        let probe = SimTime::from_millis(cooldown_ms + probe_extra_ms);
        prop_assert!(b.allow(probe), "breaker stuck open past its cooldown");
        prop_assert_eq!(b.state_at(probe), BreakerState::HalfOpen);

        // A failed probe re-opens (counted), then the cycle repeats.
        prop_assert!(b.on_failure(probe), "failed probe must re-open");
        let again = SimTime::from_millis(cooldown_ms + probe_extra_ms + cooldown_ms);
        prop_assert!(b.allow(again), "re-opened breaker stuck after second cooldown");
        b.on_success();
        prop_assert_eq!(b.state_at(again), BreakerState::Closed);
    }
}
