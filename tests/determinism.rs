//! Reproducibility: every simulation in the workspace is deterministic in
//! its seed, distinct seeds genuinely decorrelate runs, and parallel
//! execution — the fleet slice sweep, the cluster's worker pool, and the
//! spec runner's multi-seed fan-out — is bit-identical to serial
//! execution.

use cluster::fleet::FleetReport;
use proptest::prelude::*;
use scenarios::spec::{self, run_spec, RunOptions, ScenarioSpec};
use scenarios::{blind_isolation, standalone, Policy, Scale};
use simcore::SimDuration;
use telemetry::LogHistogram;
use workloads::BullyIntensity;

fn tiny() -> Scale {
    Scale {
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
    }
}

#[test]
fn identical_seeds_identical_reports() {
    let a = standalone(2_000.0, 1234, tiny());
    let b = standalone(2_000.0, 1234, tiny());
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.breakdown.primary, b.breakdown.primary);
    assert_eq!(a.breakdown.idle, b.breakdown.idle);
    assert_eq!(a.machine.dispatches, b.machine.dispatches);
}

#[test]
fn identical_seeds_identical_controller_decisions() {
    let a = blind_isolation(8, 2_000.0, 77, tiny());
    let b = blind_isolation(8, 2_000.0, 77, tiny());
    let (sa, sb) = (a.controller.expect("ran"), b.controller.expect("ran"));
    assert_eq!(sa.cpu_polls, sb.cpu_polls);
    assert_eq!(sa.affinity_updates, sb.affinity_updates);
    assert_eq!(a.secondary_cpu, b.secondary_cpu);
}

#[test]
fn different_seeds_decorrelate() {
    let a = standalone(2_000.0, 1, tiny());
    let b = standalone(2_000.0, 2, tiny());
    // Same bands, different samples.
    assert_ne!(
        (a.latency.p50, a.latency.p99, a.breakdown.primary),
        (b.latency.p50, b.latency.p99, b.breakdown.primary),
        "distinct seeds must not produce identical runs"
    );
}

fn assert_fleet_reports_identical(serial: &FleetReport, parallel: &FleetReport) {
    assert!(
        serial.bits_eq(parallel),
        "parallel fleet report diverged from serial"
    );
}

/// The parallel fleet sweep must be bit-identical to the serial one: the
/// report numbers may not differ in a single ULP across thread counts.
/// Both runs go through the spec API; a single-seed run hands the thread
/// knob down to the fleet driver's slice sweep.
#[test]
fn fleet_parallel_equals_serial() {
    let spec = ScenarioSpec::builder("det-fleet")
        .fleet(5, 2, 200)
        .policy(Policy::Blind { buffer_cores: 8 })
        .seed(99)
        .build()
        .expect("valid spec");
    let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
    let parallel = run_spec(&spec, &RunOptions::parallel(None)).expect("runnable");
    assert_fleet_reports_identical(
        serial.runs[0].as_fleet().expect("fleet"),
        parallel.runs[0].as_fleet().expect("fleet"),
    );
}

/// The spec runner's multi-seed fan-out must also be bit-identical to its
/// serial reduction, per seed and in the cross-seed statistics.
#[test]
fn multi_seed_sweep_parallel_equals_serial() {
    let spec = ScenarioSpec::builder("det-seeds")
        .single_box(1_500.0)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::Blind { buffer_cores: 8 })
        .custom_scale(200, 500)
        .seed(31)
        .seeds(6)
        .build()
        .expect("valid spec");
    let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
    let parallel = run_spec(
        &spec,
        &RunOptions {
            seeds: None,
            threads: 4,
        },
    )
    .expect("runnable");
    assert_eq!(serial.seeds, parallel.seeds);
    for (i, (a, b)) in serial.runs.iter().zip(parallel.runs.iter()).enumerate() {
        let (a, b) = (
            a.as_single_box().expect("single box"),
            b.as_single_box().expect("single box"),
        );
        assert_eq!(a.latency.p50, b.latency.p50, "seed {i} p50");
        assert_eq!(a.latency.p99, b.latency.p99, "seed {i} p99");
        assert_eq!(a.latency.count, b.latency.count, "seed {i} count");
        assert_eq!(a.machine, b.machine, "seed {i} scheduler counters");
        assert_eq!(a.controller, b.controller, "seed {i} controller counters");
        assert_eq!(
            a.secondary_cpu, b.secondary_cpu,
            "seed {i} secondary progress"
        );
    }
    for (a, b) in serial
        .summary
        .p99_ms
        .values()
        .iter()
        .zip(parallel.summary.p99_ms.values())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "summary stats diverged");
    }
}

/// Fault injection must not cost determinism: a chaos scenario's full
/// report — fault timeline included — is bit-identical between the
/// serial runner and the multi-seed thread pool, and stable on rerun.
/// Fault firing is pure simulation time (no wall clock, no extra RNG
/// draws), so the JSON reports must match byte for byte.
#[test]
fn chaos_parallel_equals_serial() {
    let mut spec = spec::named("chaos-controller-crash").expect("registered scenario");
    spec.seeds = 4; // fan out so the parallel runner actually engages
    let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
    let parallel = run_spec(
        &spec,
        &RunOptions {
            seeds: None,
            threads: 8,
        },
    )
    .expect("runnable");
    let rerun = run_spec(&spec, &RunOptions::serial()).expect("runnable");

    for run in &serial.runs {
        let r = run.as_single_box().expect("single box");
        assert!(!r.faults.is_empty(), "every seed executes the fault plan");
    }
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "chaos report diverged across thread counts"
    );
    assert_eq!(
        serial.to_json(),
        rerun.to_json(),
        "chaos report unstable across reruns"
    );
}

/// The overload chaos storms — churn storm, connection flood, quota
/// exhaustion — layer resilience machinery (admission control, retry
/// backoff, breaker timers) on top of fault injection, and none of it
/// may cost determinism: each scenario's full JSON report, resilience
/// counters included, is byte-identical between the serial runner, an
/// 8-thread seed fan-out, and a fresh rerun.
#[test]
fn chaos_storms_parallel_equal_serial_and_rerun() {
    for name in [
        "chaos-churn-storm",
        "chaos-connection-flood",
        "chaos-quota-exhaustion",
    ] {
        let mut spec = spec::named(name).expect("registered scenario");
        spec.seeds = 4; // fan out so the parallel runner actually engages
        let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
        let parallel = run_spec(
            &spec,
            &RunOptions {
                seeds: None,
                threads: 8,
            },
        )
        .expect("runnable");
        let rerun = run_spec(&spec, &RunOptions::serial()).expect("runnable");

        for run in &serial.runs {
            let r = run.as_single_box().expect("single box");
            assert!(!r.faults.is_empty(), "{name}: fault plan executed");
        }
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{name}: report diverged across thread counts"
        );
        assert_eq!(
            serial.to_json(),
            rerun.to_json(),
            "{name}: report unstable across reruns"
        );
    }
}

/// Multi-service boxes must be as deterministic as classic ones: for the
/// service-graph scenarios and the dual-primary roster, the full JSON
/// report — per-service breakdowns included — is byte-identical between
/// the serial runner, an 8-thread seed fan-out, and a fresh rerun.
#[test]
fn multi_service_parallel_equals_serial_and_rerun() {
    for name in ["graph-chain", "graph-fanout", "dual-primary-arbitration"] {
        let mut spec = spec::named(name).expect("registered scenario");
        spec.scale = spec::ScaleSpec::Custom {
            warmup_ms: 150,
            measure_ms: 400,
        };
        spec.seeds = 4; // fan out so the parallel runner actually engages
        let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
        let parallel = run_spec(
            &spec,
            &RunOptions {
                seeds: None,
                threads: 8,
            },
        )
        .expect("runnable");
        let rerun = run_spec(&spec, &RunOptions::serial()).expect("runnable");

        for run in &serial.runs {
            let r = run.as_single_box().expect("single box");
            assert!(
                !r.services.is_empty(),
                "{name}: multi-service runs report per-service rows"
            );
            for svc in &r.services {
                assert!(svc.latency.count > 0, "{name}/{}: no completions", svc.name);
            }
        }
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{name}: report diverged across thread counts"
        );
        assert_eq!(
            serial.to_json(),
            rerun.to_json(),
            "{name}: report unstable across reruns"
        );
    }
}

/// The production fleet scenario — diurnal stride, heterogeneous box
/// shapes, tenant churn, and sketch telemetry all at once — must keep the
/// bit-identity guarantee: the full JSON report (merged sketch summary
/// included) is byte-identical between the serial slice sweep, an
/// 8-thread sweep, and a fresh rerun. Shrunk dimensions keep this CI-fast
/// while still exercising every production code path.
#[test]
fn fleet_production_parallel_equals_serial_and_rerun() {
    let mut spec = spec::named("fleet-production").expect("registered scenario");
    if let spec::TargetSpec::Fleet {
        sampled_machines,
        minutes,
        slice_ms,
        ..
    } = &mut spec.target
    {
        *sampled_machines = 3;
        *minutes = 8;
        *slice_ms = 120;
    }
    spec.validate().expect("shrunk spec stays valid");
    let serial = run_spec(&spec, &RunOptions::serial()).expect("runnable");
    let parallel = run_spec(
        &spec,
        &RunOptions {
            seeds: None,
            threads: 8,
        },
    )
    .expect("runnable");
    let rerun = run_spec(&spec, &RunOptions::serial()).expect("runnable");

    let report = serial.runs[0].as_fleet().expect("fleet");
    let sketch = report
        .latency_sketch
        .as_ref()
        .expect("sketch telemetry produces a merged summary");
    assert!(sketch.count > 0, "merged sketch saw traffic");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "fleet-production report diverged across thread counts"
    );
    assert_eq!(
        serial.to_json(),
        rerun.to_json(),
        "fleet-production report unstable across reruns"
    );
}

/// The cluster simulator's persistent worker pool (engaged whenever ≥ 8
/// boxes are due at one instant and more than one worker is configured)
/// must match the serial run exactly — forced to 4 workers here so the
/// pool path executes even on a single-core machine.
#[test]
fn cluster_parallel_equals_serial() {
    use cluster::Topology;

    let spec = ScenarioSpec::builder("det-cluster")
        .cluster(Topology::small(), 400.0)
        .policy(Policy::FullPerfIso)
        .custom_scale(150, 450)
        .seed(21)
        .build()
        .expect("valid spec");
    let serial = spec.cluster_sim(spec.seed, 1).expect("cluster").run();
    let parallel = spec.cluster_sim(spec.seed, 4).expect("cluster").run();

    assert_eq!(serial.completed, parallel.completed);
    assert_eq!(serial.degraded, parallel.degraded);
    assert_eq!(serial.tla.p99, parallel.tla.p99);
    assert_eq!(serial.mla.p99, parallel.mla.p99);
    assert_eq!(serial.local.p99, parallel.local.p99);
    assert_eq!(
        serial.mean_utilization.to_bits(),
        parallel.mean_utilization.to_bits()
    );
}

/// The speculative-sync oracle: with [`cluster::SpeculationConfig`]
/// enabled, the cluster report must be byte-identical to the serial
/// conservative run — alone and composed with the worker pool. The
/// bully secondary keeps every box busy enough that sessions genuinely
/// start, release, and roll back rather than trivially idling.
#[test]
fn cluster_speculative_equals_serial_and_conservative_parallel() {
    use cluster::{ClusterSim, SpeculationConfig, Topology};

    let spec = ScenarioSpec::builder("det-cluster-speculative")
        .cluster(Topology::small(), 400.0)
        .policy(Policy::FullPerfIso)
        .cpu_bully(BullyIntensity::Mid)
        .custom_scale(150, 450)
        .seed(21)
        .build()
        .expect("valid spec");

    let serial = spec.cluster_sim(spec.seed, 1).expect("cluster").run();
    let conservative_parallel = spec.cluster_sim(spec.seed, 4).expect("cluster").run();

    let mut cfg = spec.cluster_config(spec.seed, 1).expect("cluster");
    cfg.speculation = SpeculationConfig {
        enabled: true,
        ..SpeculationConfig::default()
    };
    let (speculative, stats) = ClusterSim::new(cfg).run_with_speculation_stats();
    assert!(stats.sessions > 0, "speculation never engaged: {stats:?}");
    assert!(stats.released_steps > 0, "no speculated step released");

    let mut cfg = spec.cluster_config(spec.seed, 4).expect("cluster");
    cfg.speculation.enabled = true;
    cfg.min_par_boxes = 2; // force the pool path on the small topology
    let (speculative_parallel, par_stats) = ClusterSim::new(cfg).run_with_speculation_stats();
    assert!(par_stats.sessions > 0, "pooled speculation never engaged");

    let want = serde_json::to_string(&serial).expect("serializes");
    for (label, got) in [
        ("conservative-parallel", &conservative_parallel),
        ("speculative-serial", &speculative),
        ("speculative-parallel", &speculative_parallel),
    ] {
        assert_eq!(
            want,
            serde_json::to_string(got).expect("serializes"),
            "{label} cluster report diverged from serial"
        );
    }
}

/// Speculation under fault injection: a chaos timeline (controller crash
/// plus a box restart) fires mid-window, forcing rollbacks through the
/// chaos machinery — the report, fault records included, must still be
/// byte-identical to the serial conservative run. (The fleet driver
/// advances boxes directly without a cluster fabric, so speculation — a
/// `ClusterSim` feature — cannot perturb `fleet-production` by
/// construction; `fleet_production_parallel_equals_serial_and_rerun`
/// above pins that path.)
#[test]
fn cluster_speculative_chaos_equals_serial() {
    use cluster::{ClusterSim, Topology};
    use scenarios::spec::FaultEvent;

    let spec = ScenarioSpec::builder("det-cluster-speculative-chaos")
        .cluster(Topology::small(), 400.0)
        .policy(Policy::FullPerfIso)
        .cpu_bully(BullyIntensity::Mid)
        .fault_event(FaultEvent::ControllerCrash {
            at_ms: 250,
            downtime_polls: 4,
        })
        .fault_event(FaultEvent::BoxRestart {
            at_ms: 350,
            downtime_ms: 30,
        })
        .custom_scale(150, 450)
        .seed(33)
        .build()
        .expect("valid spec");

    let serial = spec.cluster_sim(spec.seed, 1).expect("cluster").run();
    assert!(
        !serial.faults.is_empty(),
        "the chaos timeline must actually fire"
    );

    let mut cfg = spec.cluster_config(spec.seed, 1).expect("cluster");
    cfg.speculation.enabled = true;
    let (speculative, stats) = ClusterSim::new(cfg).run_with_speculation_stats();
    assert!(stats.sessions > 0, "speculation never engaged: {stats:?}");
    assert_eq!(
        serde_json::to_string(&serial).expect("serializes"),
        serde_json::to_string(&speculative).expect("serializes"),
        "speculative chaos report diverged from serial (stats {stats:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging per-worker histograms equals recording into one — the
    /// reduction the parallel fleet driver depends on, checked here at the
    /// workspace level over arbitrary splits.
    #[test]
    fn prop_histogram_merge_equals_single(
        vals in proptest::collection::vec(1u64..50_000_000_000u64, 1..300),
        pieces in 1usize..6,
    ) {
        let mut whole = LogHistogram::new();
        let mut parts: Vec<LogHistogram> = (0..pieces).map(|_| LogHistogram::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(SimDuration::from_nanos(v));
            parts[i % pieces].record(SimDuration::from_nanos(v));
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }
}
