//! Reproducibility: every simulation in the workspace is deterministic in
//! its seed, and distinct seeds genuinely decorrelate runs.

use scenarios::{blind_isolation, standalone, Scale};
use simcore::SimDuration;

fn tiny() -> Scale {
    Scale { warmup: SimDuration::from_millis(200), measure: SimDuration::from_millis(600) }
}

#[test]
fn identical_seeds_identical_reports() {
    let a = standalone(2_000.0, 1234, tiny());
    let b = standalone(2_000.0, 1234, tiny());
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.breakdown.primary, b.breakdown.primary);
    assert_eq!(a.breakdown.idle, b.breakdown.idle);
    assert_eq!(a.machine.dispatches, b.machine.dispatches);
}

#[test]
fn identical_seeds_identical_controller_decisions() {
    let a = blind_isolation(8, 2_000.0, 77, tiny());
    let b = blind_isolation(8, 2_000.0, 77, tiny());
    let (sa, sb) = (a.controller.expect("ran"), b.controller.expect("ran"));
    assert_eq!(sa.cpu_polls, sb.cpu_polls);
    assert_eq!(sa.affinity_updates, sb.affinity_updates);
    assert_eq!(a.secondary_cpu, b.secondary_cpu);
}

#[test]
fn different_seeds_decorrelate() {
    let a = standalone(2_000.0, 1, tiny());
    let b = standalone(2_000.0, 2, tiny());
    // Same bands, different samples.
    assert_ne!(
        (a.latency.p50, a.latency.p99, a.breakdown.primary),
        (b.latency.p50, b.latency.p99, b.breakdown.primary),
        "distinct seeds must not produce identical runs"
    );
}
