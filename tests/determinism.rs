//! Reproducibility: every simulation in the workspace is deterministic in
//! its seed, distinct seeds genuinely decorrelate runs, and parallel
//! execution is bit-identical to serial execution.

use cluster::fleet::{run_fleet, FleetConfig};
use proptest::prelude::*;
use scenarios::{blind_isolation, standalone, Scale};
use simcore::SimDuration;
use telemetry::LogHistogram;

fn tiny() -> Scale {
    Scale {
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
    }
}

#[test]
fn identical_seeds_identical_reports() {
    let a = standalone(2_000.0, 1234, tiny());
    let b = standalone(2_000.0, 1234, tiny());
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.breakdown.primary, b.breakdown.primary);
    assert_eq!(a.breakdown.idle, b.breakdown.idle);
    assert_eq!(a.machine.dispatches, b.machine.dispatches);
}

#[test]
fn identical_seeds_identical_controller_decisions() {
    let a = blind_isolation(8, 2_000.0, 77, tiny());
    let b = blind_isolation(8, 2_000.0, 77, tiny());
    let (sa, sb) = (a.controller.expect("ran"), b.controller.expect("ran"));
    assert_eq!(sa.cpu_polls, sb.cpu_polls);
    assert_eq!(sa.affinity_updates, sb.affinity_updates);
    assert_eq!(a.secondary_cpu, b.secondary_cpu);
}

#[test]
fn different_seeds_decorrelate() {
    let a = standalone(2_000.0, 1, tiny());
    let b = standalone(2_000.0, 2, tiny());
    // Same bands, different samples.
    assert_ne!(
        (a.latency.p50, a.latency.p99, a.breakdown.primary),
        (b.latency.p50, b.latency.p99, b.breakdown.primary),
        "distinct seeds must not produce identical runs"
    );
}

/// The parallel fleet sweep must be bit-identical to the serial one: the
/// report numbers may not differ in a single ULP across thread counts.
#[test]
fn fleet_parallel_equals_serial() {
    let base = FleetConfig {
        minutes: 5,
        sampled_machines: 2,
        slice: SimDuration::from_millis(200),
        ..Default::default()
    };
    let serial = run_fleet(&FleetConfig {
        threads: 1,
        ..base.clone()
    });
    let parallel = run_fleet(&FleetConfig { threads: 0, ..base });

    assert_eq!(
        serial.mean_utilization.to_bits(),
        parallel.mean_utilization.to_bits()
    );
    assert_eq!(serial.max_p99, parallel.max_p99);
    assert_eq!(serial.slices, parallel.slices);
    assert_eq!(serial.sim_events, parallel.sim_events);
    for (name, a, b) in [
        ("qps", &serial.qps, &parallel.qps),
        ("p99_ms", &serial.p99_ms, &parallel.p99_ms),
        (
            "utilization_pct",
            &serial.utilization_pct,
            &parallel.utilization_pct,
        ),
        (
            "trainer_progress",
            &serial.trainer_progress,
            &parallel.trainer_progress,
        ),
    ] {
        assert_eq!(a.len(), b.len(), "{name} length");
        for i in 0..a.len() {
            let (x, y) = (a.bucket(i).unwrap(), b.bucket(i).unwrap());
            assert_eq!(x.count, y.count, "{name} bucket {i} count");
            assert_eq!(x.sum.to_bits(), y.sum.to_bits(), "{name} bucket {i} sum");
            assert_eq!(x.max.to_bits(), y.max.to_bits(), "{name} bucket {i} max");
        }
    }
}

/// The cluster simulator's parallel box advance (engaged whenever ≥ 8
/// boxes are due at one instant and more than one worker is configured)
/// must match the serial run exactly — forced to 4 workers here so the
/// scoped-thread path executes even on a single-core machine.
#[test]
fn cluster_parallel_equals_serial() {
    use cluster::{ClusterConfig, ClusterSim, Topology};
    use indexserve::SecondaryKind;

    let base = ClusterConfig {
        topology: Topology::small(),
        qps_total: 400.0,
        warmup: SimDuration::from_millis(150),
        measure: SimDuration::from_millis(450),
        ..ClusterConfig::paper_cluster(SecondaryKind::none(), 21)
    };
    let serial = ClusterSim::new(ClusterConfig {
        threads: 1,
        ..base.clone()
    })
    .run();
    let parallel = ClusterSim::new(ClusterConfig { threads: 4, ..base }).run();

    assert_eq!(serial.completed, parallel.completed);
    assert_eq!(serial.degraded, parallel.degraded);
    assert_eq!(serial.tla.p99, parallel.tla.p99);
    assert_eq!(serial.mla.p99, parallel.mla.p99);
    assert_eq!(serial.local.p99, parallel.local.p99);
    assert_eq!(
        serial.mean_utilization.to_bits(),
        parallel.mean_utilization.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging per-worker histograms equals recording into one — the
    /// reduction the parallel fleet driver depends on, checked here at the
    /// workspace level over arbitrary splits.
    #[test]
    fn prop_histogram_merge_equals_single(
        vals in proptest::collection::vec(1u64..50_000_000_000u64, 1..300),
        pieces in 1usize..6,
    ) {
        let mut whole = LogHistogram::new();
        let mut parts: Vec<LogHistogram> = (0..pieces).map(|_| LogHistogram::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(SimDuration::from_nanos(v));
            parts[i % pieces].record(SimDuration::from_nanos(v));
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }
}
