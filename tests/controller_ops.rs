//! Operational-envelope integration tests (§4.2): the kill switch, crash
//! recovery through the Autopilot substrate, runtime commands, and the
//! memory watchdog — all exercised on a live simulated machine.

use autopilot::{RestartDecision, ServiceKind, ServiceManager, ServiceRegistry};
use indexserve::{BoxConfig, BoxSim, SecondaryKind};
use perfiso::recovery::ControllerState;
use perfiso::{Command, CpuPolicy, PerfIsoConfig};
use scenarios::spec::ScenarioSpec;
use scenarios::Policy;
use simcore::{SimDuration, SimTime};
use workloads::BullyIntensity;

/// A machine with a high bully under blind isolation, described by the
/// spec API and embedded as a live simulator.
fn bully_box(seed: u64) -> BoxSim {
    ScenarioSpec::builder("ops")
        .single_box(2_000.0)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::Blind { buffer_cores: 8 })
        .build()
        .expect("valid spec")
        .box_sim(seed)
        .expect("single-box scenario")
}

#[test]
fn kill_switch_releases_and_reapplies_live() {
    let mut sim = bully_box(3);
    // Let the controller converge: the bully is restricted, idle cores
    // hover near the buffer.
    sim.advance_to(SimTime::from_millis(100));
    let stats = sim.controller_stats().expect("controller installed");
    assert!(stats.cpu_polls > 50, "polling loop must be running");
    assert!(stats.affinity_updates >= 1, "initial grow must have fired");
    assert!(
        stats.affinity_updates < stats.cpu_polls / 2,
        "update-on-change separation"
    );

    // Disable: within a tick the bully may take every core.
    sim.controller_command(Command::SetEnabled(false));
    sim.advance_to(SimTime::from_millis(200));
    let bd = sim.breakdown();
    assert!(
        bd.idle_fraction() < 0.1,
        "bully must saturate the machine while disabled: idle {}",
        bd.idle_fraction()
    );

    // Re-enable: the restriction returns.
    sim.controller_command(Command::SetEnabled(true));
    sim.advance_to(SimTime::from_millis(210));
    let idle_after = 1.0 - sim.breakdown().utilization().min(1.0);
    let _ = idle_after; // Converges over the next polls; checked via snapshot below.
    let snap = sim.controller_snapshot();
    assert!(snap.enabled);
    assert!(
        snap.secondary_mask.count() <= 40,
        "secondary restricted again: {} cores",
        snap.secondary_mask.count()
    );
}

#[test]
fn crash_recovery_resumes_from_snapshot() {
    let dir = std::env::temp_dir().join(format!("perfiso-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("state.json");

    let mut sim = bully_box(5);
    sim.advance_to(SimTime::from_millis(100));
    let before = sim.controller_snapshot();
    assert!(
        before.secondary_mask.count() > 0,
        "bully held some cores before the crash"
    );
    before.save(&path).expect("snapshot saved");

    // Autopilot notices the crash and restarts the service.
    let mut registry = ServiceRegistry::new();
    registry.register("perfiso", ServiceKind::Infrastructure, vec![300]);
    let mut manager = ServiceManager::new(Default::default());
    assert!(matches!(
        manager.report_crash(&mut registry, "perfiso"),
        RestartDecision::RestartAfterMs(_)
    ));
    manager.report_started(&mut registry, "perfiso", vec![301]);

    // The replacement controller loads the snapshot instead of collapsing
    // the secondary mask to empty.
    let loaded = ControllerState::load(&path).expect("snapshot loaded");
    assert_eq!(loaded, before);
    sim.controller_restart_with(&loaded);
    let after = sim.controller_snapshot();
    assert_eq!(
        after.secondary_mask, before.secondary_mask,
        "mask resumed, not reset"
    );
    assert_eq!(after.enabled, before.enabled);

    // And the box keeps running under the restored controller.
    sim.advance_to(SimTime::from_millis(200));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn runtime_buffer_resize_applies_on_live_box() {
    let mut sim = bully_box(7);
    sim.advance_to(SimTime::from_millis(100));
    let before = sim.controller_snapshot().secondary_mask.count();
    // Double the buffer: the secondary must shrink by roughly the delta.
    sim.controller_command(Command::SetBufferCores(16));
    sim.advance_to(SimTime::from_millis(200));
    let after = sim.controller_snapshot().secondary_mask.count();
    assert!(
        after + 6 <= before,
        "doubling the buffer must shrink the secondary: {before} -> {after}"
    );
}

#[test]
fn policy_switch_at_runtime() {
    let mut sim = bully_box(9);
    sim.advance_to(SimTime::from_millis(50));
    // Switch from blind isolation to a static 8-core restriction.
    sim.controller_command(Command::SetCpuPolicy(CpuPolicy::StaticCores(8)));
    sim.advance_to(SimTime::from_millis(150));
    let bd = sim.breakdown();
    // The bully is pinned to 8 of 48 cores from t=50ms on; over the whole
    // run its share must sit well below a blind-isolation run's.
    assert!(
        bd.secondary < SimDuration::from_millis(150 * 30),
        "secondary CPU {} too high for a static-8 restriction",
        bd.secondary
    );
}

// The two watchdog tests below configure controller-internal knobs
// (poll intervals, kill watermark) that sit outside the spec API's policy
// vocabulary, so they assemble their BoxSim directly — deliberately the
// embedding path, not an experiment description.

#[test]
fn memory_watchdog_kills_secondary_on_pressure() {
    // The box's baseline footprint is already large (110 GiB index cache
    // + 6 GiB primary overhead + 2 GiB bully = 92 % of 128 GiB), so the
    // default 95 % watermark leaves headroom for the healthy case.
    let cfg = PerfIsoConfig {
        memory_poll_interval: SimDuration::from_millis(20),
        memory_kill_watermark: 0.95,
        ..PerfIsoConfig::default()
    };
    let mut sim = BoxSim::new(BoxConfig::paper_box(
        SecondaryKind::cpu(BullyIntensity::High),
        Some(cfg),
        11,
    ));
    sim.advance_to(SimTime::from_millis(30));
    assert!(
        !sim.secondary_killed(),
        "healthy footprint must not be killed"
    );

    // The batch job balloons: primary (116 GiB) + secondary now exceed the
    // 95 % watermark of 128 GiB.
    sim.set_secondary_memory(10 << 30);
    sim.advance_to(SimTime::from_millis(100));
    assert!(sim.secondary_killed(), "watchdog must kill the secondary");
    assert_eq!(sim.controller_stats().unwrap().memory_kills, 1);

    // With the bully gone the machine drains back to idle.
    sim.advance_to(SimTime::from_millis(400));
    let idle = 1.0 - sim.breakdown().utilization();
    assert!(
        idle > 0.5,
        "machine should be mostly idle after the kill: {idle}"
    );
}

#[test]
fn disabled_controller_does_not_kill_on_memory_pressure() {
    let cfg = PerfIsoConfig {
        memory_poll_interval: SimDuration::from_millis(20),
        memory_kill_watermark: 0.95,
        ..PerfIsoConfig::default()
    };
    let mut sim = BoxSim::new(BoxConfig::paper_box(
        SecondaryKind::cpu(BullyIntensity::Mid),
        Some(cfg),
        13,
    ));
    sim.controller_command(Command::SetEnabled(false));
    sim.set_secondary_memory(20 << 30);
    sim.advance_to(SimTime::from_millis(200));
    assert!(
        !sim.secondary_killed(),
        "kill switch must suppress watchdog actions"
    );
}
