//! Disk-side isolation integration tests: the disk bully, HDFS static
//! caps, DWRR priority adjustment, and the SSD/HDD placement split
//! (§3.2, §4.1, §5.3). Every experiment cell is a declarative
//! [`scenarios::spec::ScenarioSpec`].

use indexserve::BoxReport;
use scenarios::spec::{run_spec, RunOptions, ScenarioBuilder, ScenarioSpec};
use scenarios::Policy;
use simcore::SimDuration;
use workloads::{DiskBully, HdfsNode};

fn cell(name: &str, qps: f64, seed: u64) -> ScenarioBuilder {
    ScenarioSpec::builder(name)
        .single_box(qps)
        .custom_scale(400, 1_600)
        .seed(seed)
}

fn run(builder: ScenarioBuilder) -> BoxReport {
    let spec = builder.build().expect("valid spec");
    let report = run_spec(&spec, &RunOptions::serial()).expect("runnable spec");
    report.runs[0].as_single_box().expect("single box").clone()
}

#[test]
fn disk_bully_on_shared_hdd_leaves_primary_tail_intact() {
    // The primary's index reads live on the exclusive SSD volume; the disk
    // bully hammers the shared HDD volume. With PerfIso's I/O management
    // the query tail must stay within the paper's cluster band (±1.2 ms).
    let seed = 19;
    let base = run(cell("base", 2_000.0, seed));
    let colo = run(cell("colo", 2_000.0, seed)
        .disk_bully(DiskBully::default())
        .policy(Policy::FullPerfIso));
    let d = colo.latency.p99.saturating_sub(base.latency.p99);
    assert!(
        d < SimDuration::from_millis(2),
        "disk bully degradation {d} (colo {} base {})",
        colo.latency.p99,
        base.latency.p99
    );
    assert!(colo.drop_ratio() < 0.005, "drops {}", colo.drop_ratio());
}

#[test]
fn hdfs_traffic_is_capped_and_harmless() {
    // §5.3: replication capped at 20 MB/s, clients at 60 MB/s. With the
    // caps installed the HDFS side-traffic must not move the tail.
    let seed = 23;
    let base = run(cell("base", 2_000.0, seed));
    let hdfs = run(cell("hdfs", 2_000.0, seed)
        .hdfs()
        .policy(Policy::FullPerfIso));
    let d = hdfs.latency.p99.saturating_sub(base.latency.p99);
    assert!(d < SimDuration::from_millis(2), "hdfs degradation {d}");
}

#[test]
fn hdfs_node_generators_produce_plausible_ops() {
    // The replication node writes sequentially; the client mixes reads and
    // writes. Both must stay within their configured submission rates.
    let mut rng = simcore::SimRng::seed_from_u64(5);
    let repl = HdfsNode::replication();
    let mut t = simcore::SimTime::ZERO;
    let mut bytes = 0u64;
    let horizon = simcore::SimTime::from_secs(2);
    while t < horizon {
        let (next, op) = repl.next_submission(t, &mut rng);
        assert!(next > t, "submissions advance time");
        bytes += op.bytes;
        t = next;
    }
    let rate = bytes as f64 / 2.0;
    // The replication stream offers ~40 MB/s before the 20 MB/s token
    // bucket downstream; allow generous sampling noise either side.
    assert!(
        rate < 60.0 * 1024.0 * 1024.0,
        "replication offered {rate} B/s"
    );
    assert!(
        rate > 10.0 * 1024.0 * 1024.0,
        "replication offered {rate} B/s too low"
    );
}

#[test]
fn controller_raises_crowded_tenant_priority() {
    // End-to-end DWRR: a disk bully saturates the HDD volume; the HDFS
    // client's guaranteed IOPS floor is crowded out, so PerfIso must raise
    // its I/O priority within a few controller rounds.
    let r = run(cell("dwrr", 500.0, 29)
        .disk_bully(DiskBully {
            depth: 16,
            ..DiskBully::default()
        })
        .hdfs()
        .policy(Policy::FullPerfIso));
    let stats = r.controller.expect("controller ran");
    assert!(
        stats.io_rounds > 5,
        "io controller must have run: {}",
        stats.io_rounds
    );
    assert!(
        stats.io_adjustments >= 1,
        "saturated volume must trigger at least one priority adjustment"
    );
}
