//! Golden-report regression suite.
//!
//! Each case runs one registry scenario at a small fixed-seed scale and
//! compares the full JSON [`scenarios::spec::Report`] against a fixture
//! committed under `tests/golden/`. The comparison is a `bits_eq`-style
//! walk: every number must match exactly (floats by `to_bits`, via the
//! lossless shortest-round-trip JSON encoding), every object must have
//! exactly the same keys. Any behaviour change in the simulators, the
//! controller, or the spec layer shows up here as a precise JSON path.
//!
//! # Blessing new fixtures
//!
//! When a change is *intentional*, regenerate the fixtures and commit
//! them together with the change:
//!
//! ```text
//! PERFISO_BLESS=1 cargo test -q --test golden_reports
//! git add tests/golden && git diff --staged tests/golden  # review!
//! ```
//!
//! Without `PERFISO_BLESS` the suite never writes; a missing fixture is
//! a failure telling you to bless.

use std::path::PathBuf;

use scenarios::spec::{self, run_spec, RunOptions, ScaleSpec, ScenarioSpec, TargetSpec};
use serde_json::Value;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("PERFISO_BLESS").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Shrinks a registry scenario to a fixed, environment-independent size
/// (explicit window, no `PERFISO_SCALE` dependence, tiny fleet sweep).
///
/// Chaos scenarios keep their registered window and seed count: their
/// fault timelines use absolute fire times, and shrinking the window
/// would cut the faults off.
fn golden_case(name: &str) -> ScenarioSpec {
    let mut spec = spec::named(name).expect("registered scenario");
    if spec.fault.is_empty() {
        spec.scale = ScaleSpec::Custom {
            warmup_ms: 150,
            measure_ms: 400,
        };
        spec.seeds = 2;
    }
    if let TargetSpec::Fleet {
        sampled_machines,
        minutes,
        slice_ms,
        ..
    } = &mut spec.target
    {
        *sampled_machines = 1;
        *minutes = 2;
        *slice_ms = 80;
    }
    spec.validate().expect("golden case validates");
    spec
}

/// Recursive exact comparison; `path` pinpoints the first mismatch.
fn walk(path: &str, got: &Value, want: &Value) -> Result<(), String> {
    match (got, want) {
        (Value::Object(g), Value::Object(w)) => {
            for (k, wv) in w {
                let gv = got
                    .get(k)
                    .ok_or_else(|| format!("{path}.{k}: missing in report"))?;
                walk(&format!("{path}.{k}"), gv, wv)?;
            }
            for (k, _) in g {
                if want.get(k).is_none() {
                    return Err(format!("{path}.{k}: not in fixture (new field?)"));
                }
            }
            Ok(())
        }
        (Value::Array(g), Value::Array(w)) => {
            if g.len() != w.len() {
                return Err(format!("{path}: length {} != fixture {}", g.len(), w.len()));
            }
            for (i, (gv, wv)) in g.iter().zip(w.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), gv, wv)?;
            }
            Ok(())
        }
        (Value::F64(g), Value::F64(w)) => {
            if g.to_bits() == w.to_bits() {
                Ok(())
            } else {
                Err(format!("{path}: {g} != fixture {w} (bits differ)"))
            }
        }
        _ => {
            if got == want {
                Ok(())
            } else {
                Err(format!("{path}: {got:?} != fixture {want:?}"))
            }
        }
    }
}

fn check_golden(name: &str) {
    let spec = golden_case(name);
    let report = run_spec(&spec, &RunOptions::serial()).expect("golden case runs");
    let text = report.to_json();
    let fixture_path = golden_dir().join(format!("{name}.json"));

    if blessing() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&fixture_path, &text).expect("write fixture");
        eprintln!("blessed {}", fixture_path.display());
        return;
    }

    let fixture = std::fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run `PERFISO_BLESS=1 cargo test -q --test \
             golden_reports` and commit the result",
            fixture_path.display()
        )
    });
    let got: Value = serde_json::from_str(&text).expect("report JSON parses");
    let want: Value = serde_json::from_str(&fixture).expect("fixture JSON parses");
    if let Err(msg) = walk("$", &got, &want) {
        panic!(
            "{name}: report deviates from golden fixture at {msg}\n\
             If this change is intentional, re-bless with PERFISO_BLESS=1 \
             (see the header of tests/golden_reports.rs)."
        );
    }
}

#[test]
fn golden_quickstart() {
    check_golden("quickstart");
}

#[test]
fn golden_fig04_no_isolation() {
    check_golden("fig04");
}

#[test]
fn golden_io_throttle() {
    check_golden("io-throttle");
}

#[test]
fn golden_fleet_smoke() {
    check_golden("fleet-smoke");
}

#[test]
fn golden_fleet_production() {
    check_golden("fleet-production");
}

#[test]
fn golden_chaos_controller_crash() {
    check_golden("chaos-controller-crash");
}

#[test]
fn golden_chaos_crash_loop() {
    check_golden("chaos-crash-loop");
}

#[test]
fn golden_chaos_config_rollout() {
    check_golden("chaos-config-rollout");
}

#[test]
fn golden_chaos_secondary_churn() {
    check_golden("chaos-secondary-churn");
}

#[test]
fn golden_chaos_churn_storm() {
    check_golden("chaos-churn-storm");
}

#[test]
fn golden_chaos_connection_flood() {
    check_golden("chaos-connection-flood");
}

#[test]
fn golden_chaos_quota_exhaustion() {
    check_golden("chaos-quota-exhaustion");
}

#[test]
fn golden_graph_hedged() {
    check_golden("graph-hedged");
}

#[test]
fn golden_graph_chain() {
    check_golden("graph-chain");
}

#[test]
fn golden_graph_fanout() {
    check_golden("graph-fanout");
}

#[test]
fn golden_dual_primary_arbitration() {
    check_golden("dual-primary-arbitration");
}

/// The arbitration fixture is the acceptance surface for multi-primary
/// boxes: both colocated services must appear with their own measured
/// tails, and both must actually complete queries under the bully.
#[test]
fn dual_primary_fixture_reports_both_service_tails() {
    if blessing() {
        return; // fixtures may be mid-regeneration
    }
    let path = golden_dir().join("dual-primary-arbitration.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let report: spec::Report = serde_json::from_str(&text).expect("fixture parses");
    for run in report.box_reports() {
        assert_eq!(run.services.len(), 2, "two service rows per seed");
        assert_eq!(run.services[0].name, "web");
        assert_eq!(run.services[1].name, "ads");
        for svc in &run.services {
            assert!(svc.latency.count > 0, "{}: no completions", svc.name);
            assert!(
                svc.latency.p99 > simcore::SimDuration::ZERO,
                "{}: p99 unmeasured",
                svc.name
            );
        }
    }
}

/// The production-fleet fixture is the acceptance surface for sketch
/// telemetry: the committed report must carry a merged percentile
/// summary with the advertised relative-error guarantee, and the other
/// fleet fixture (exact telemetry) must not grow a sketch key.
#[test]
fn fleet_production_fixture_reports_merged_sketch() {
    if blessing() {
        return; // fixtures may be mid-regeneration
    }
    let path = golden_dir().join("fleet-production.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let report: spec::Report = serde_json::from_str(&text).expect("fixture parses");
    for run in &report.runs {
        let fleet = run.as_fleet().expect("fleet report");
        let sketch = fleet
            .latency_sketch
            .as_ref()
            .expect("sketch telemetry merged into the report");
        assert!(sketch.count > 0, "sketch saw measured traffic");
        assert!(sketch.relative_error > 0.0 && sketch.relative_error < 0.02);
        assert!(sketch.p50 <= sketch.p99 && sketch.p99 <= sketch.max);
    }

    let exact = std::fs::read_to_string(golden_dir().join("fleet-smoke.json"))
        .expect("fleet-smoke fixture");
    assert!(
        !exact.contains("latency_sketch"),
        "exact-telemetry fleet fixture must stay sketch-free"
    );
}

/// The fixtures themselves must round-trip through serde — guards
/// against committing a hand-edited fixture the loader cannot parse.
#[test]
fn golden_fixtures_parse_as_reports() {
    if blessing() {
        return; // fixtures may be mid-regeneration
    }
    for name in [
        "quickstart",
        "fig04",
        "io-throttle",
        "fleet-smoke",
        "fleet-production",
        "chaos-controller-crash",
        "chaos-crash-loop",
        "chaos-config-rollout",
        "chaos-secondary-churn",
        "chaos-churn-storm",
        "chaos-connection-flood",
        "chaos-quota-exhaustion",
        "graph-chain",
        "graph-fanout",
        "graph-hedged",
        "dual-primary-arbitration",
    ] {
        let path = golden_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let report: spec::Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert_eq!(report.spec.name, name);
        assert_eq!(report.runs.len(), report.seeds.len());
    }
}
