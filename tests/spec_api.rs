//! Workspace-level tests for the unified scenario API: registry
//! completeness, JSON round-trips of specs and reports, and CLI-shaped
//! multi-seed determinism.

use scenarios::spec::{self, run_spec, Report, RunOptions, ScaleSpec, ScenarioSpec};

#[test]
fn registry_has_the_paper_scenarios() {
    let names = spec::names();
    assert!(names.len() >= 8, "need >= 8 named scenarios, got {names:?}");
    for required in [
        "quickstart",
        "standalone",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "io-throttle",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "scenario {required} missing from registry"
        );
    }
}

#[test]
fn every_registry_spec_validates_and_round_trips() {
    for spec in spec::registry() {
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not round-trip: {e}", spec.name));
        assert_eq!(back, spec, "{} changed across JSON round-trip", spec.name);
    }
}

#[test]
fn report_round_trips_through_json() {
    // A shrunk fig05: same policy x secondary cell, test-sized window.
    let mut spec = spec::named("fig05").expect("registered");
    spec.scale = ScaleSpec::Custom {
        warmup_ms: 150,
        measure_ms: 350,
    };
    spec.seeds = 2;
    let report = run_spec(&spec, &RunOptions::serial()).expect("runnable");
    let text = report.to_json();
    let back: Report = serde_json::from_str(&text).expect("report JSON parses");
    assert_eq!(back.spec, report.spec);
    assert_eq!(back.seeds, report.seeds);
    assert_eq!(back.runs.len(), report.runs.len());
    for (a, b) in report.runs.iter().zip(back.runs.iter()) {
        let (a, b) = (
            a.as_single_box().expect("single box"),
            b.as_single_box().expect("single box"),
        );
        assert_eq!(a.latency.count, b.latency.count);
        assert_eq!(a.latency.p99, b.latency.p99);
        assert_eq!(a.machine, b.machine);
        assert_eq!(a.controller, b.controller);
    }
    assert_eq!(
        back.summary.p99_ms.values().len(),
        report.summary.p99_ms.values().len()
    );
}

/// The acceptance-criteria shape: a named scenario swept over many seeds
/// must be bit-identical between `--threads 0` and `--threads 1` (here
/// with a test-sized window; the window length does not affect the
/// fan-out machinery).
#[test]
fn named_scenario_multi_seed_parallel_matches_serial() {
    let mut spec = spec::named("fig05").expect("registered");
    spec.scale = ScaleSpec::Custom {
        warmup_ms: 150,
        measure_ms: 300,
    };
    let serial = run_spec(
        &spec,
        &RunOptions {
            seeds: Some(5),
            threads: 1,
        },
    )
    .expect("runnable");
    let parallel = run_spec(
        &spec,
        &RunOptions {
            seeds: Some(5),
            threads: 0,
        },
    )
    .expect("runnable");
    assert_eq!(serial.seeds, parallel.seeds);
    for (i, (a, b)) in serial.runs.iter().zip(parallel.runs.iter()).enumerate() {
        let (a, b) = (
            a.as_single_box().expect("single box"),
            b.as_single_box().expect("single box"),
        );
        assert_eq!(a.latency.p50, b.latency.p50, "seed {i}");
        assert_eq!(a.latency.p95, b.latency.p95, "seed {i}");
        assert_eq!(a.latency.p99, b.latency.p99, "seed {i}");
        assert_eq!(a.latency.count, b.latency.count, "seed {i}");
        assert_eq!(a.latency.dropped, b.latency.dropped, "seed {i}");
        assert_eq!(a.machine, b.machine, "seed {i}");
        assert_eq!(a.controller, b.controller, "seed {i}");
        assert_eq!(
            a.breakdown.utilization().to_bits(),
            b.breakdown.utilization().to_bits(),
            "seed {i}"
        );
    }
}

#[test]
fn spec_errors_render_usefully() {
    let err = spec::named("nope").expect_err("unknown scenario");
    assert!(err.to_string().contains("nope"));
    let err = ScenarioSpec::from_json("{not json").expect_err("bad file");
    assert!(err.to_string().contains("spec file"));
}
