//! Every named scenario in the registry must actually run end-to-end —
//! not merely validate. Each spec is shrunk to test scale (tiny window,
//! small topology, one seed, serial) and executed; a scenario whose
//! driver wiring breaks now fails here instead of at the next bench run.

use scenarios::spec::{self, run_spec, run_sweep, RunOptions, ScaleSpec, ScenarioSpec, TargetSpec};

/// Shrinks a registry spec to smoke-test size without changing what it
/// exercises: same secondary mix, policy, controller overrides, and
/// target *kind* — only the measured window, cluster shape, and fleet
/// sweep length are reduced.
fn shrink(mut spec: ScenarioSpec) -> ScenarioSpec {
    // Chaos timelines use absolute fire times, so fault scenarios keep
    // their registered window (a shrunk window would skip the faults).
    if spec.fault.is_empty() {
        spec.scale = ScaleSpec::Custom {
            warmup_ms: 100,
            measure_ms: 300,
        };
    }
    spec.seeds = 1;
    match &mut spec.target {
        TargetSpec::SingleBox { .. } | TargetSpec::MultiBox { .. } => {}
        TargetSpec::Cluster {
            columns,
            rows,
            tlas,
            ..
        } => {
            *columns = (*columns).min(3);
            *rows = (*rows).min(2);
            *tlas = (*tlas).min(2);
        }
        TargetSpec::Fleet {
            sampled_machines,
            minutes,
            slice_ms,
            ..
        } => {
            *sampled_machines = 1;
            *minutes = 2;
            *slice_ms = (*slice_ms).min(100);
        }
    }
    spec.validate().expect("shrunk spec stays valid");
    spec
}

#[test]
fn every_registry_scenario_runs_end_to_end() {
    let opts = RunOptions::serial();
    for full in spec::registry() {
        let spec = shrink(full);
        let report =
            run_spec(&spec, &opts).unwrap_or_else(|e| panic!("{} failed to run: {e}", spec.name));
        assert_eq!(report.runs.len(), 1, "{}: one seed, one run", spec.name);
        assert_eq!(
            report.summary.p99_ms.len(),
            1,
            "{}: summary covers the run",
            spec.name
        );
        let run = &report.runs[0];
        assert!(
            run.p99() > simcore::SimDuration::ZERO,
            "{}: p99 must be measured",
            spec.name
        );
        match run {
            spec::SeedReport::SingleBox(r) => {
                assert!(r.latency.count > 0, "{}: no queries completed", spec.name);
            }
            spec::SeedReport::Cluster(r) => {
                assert!(r.completed > 0, "{}: no requests completed", spec.name);
            }
            spec::SeedReport::Fleet(r) => {
                assert!(r.slices > 0, "{}: no fleet slices", spec.name);
            }
        }
    }
}

#[test]
fn every_registry_sweep_runs_one_cell_per_combination() {
    let opts = RunOptions::serial();
    for full in spec::registry() {
        if full.sweep.is_none() {
            continue;
        }
        let spec = shrink(full);
        let expected = spec.sweep.as_ref().unwrap().cell_count();
        let sweep =
            run_sweep(&spec, &opts).unwrap_or_else(|e| panic!("{} sweep failed: {e}", spec.name));
        assert_eq!(sweep.cells.len(), expected, "{}", spec.name);
        assert_eq!(sweep.table.len(), expected, "{}", spec.name);
        for cell in &sweep.cells {
            assert_eq!(
                cell.report.runs.len(),
                1,
                "{} cell [{}]",
                spec.name,
                cell.label
            );
        }
        // Labels are unique — a sweep of identical cells is a spec bug.
        let labels: std::collections::HashSet<&str> =
            sweep.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), sweep.cells.len(), "{}", spec.name);
    }
}
