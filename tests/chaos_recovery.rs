//! The headline §4.2 robustness claim, end to end: when Autopilot
//! restarts a crashed PerfIso controller from its checkpoint, the box
//! passes through a no-isolation regime only for the downtime window and
//! the tail returns to the steady-state envelope right after recovery.
//!
//! Three runs share one seed, load, and window:
//!
//! * the registry's `chaos-controller-crash` scenario (crash at 500 ms,
//!   150 ms of downtime, restart from checkpoint),
//! * the identical spec with the fault timeline removed (steady-state
//!   control), and
//! * a no-isolation run (the Fig. 4 regime the downtime window must
//!   resemble).
//!
//! Latencies are phased by *arrival time* against the executed fault
//! record, so each phase compares like-for-like query populations.

use indexserve::service::QueryOutcome;
use indexserve::{BoxEvent, FaultRecord};
use scenarios::spec::{self, FaultSpec, ScenarioSpec};
use scenarios::Policy;
use simcore::{SimDuration, SimTime};

/// Drives `spec`'s single-box workload to completion, returning every
/// query outcome plus the executed fault timeline.
fn run_collect(spec: &ScenarioSpec, seed: u64) -> (Vec<QueryOutcome>, Vec<FaultRecord>) {
    let plan = spec.run_plan().expect("single-box spec");
    let mut client = spec.open_loop_client(seed).expect("client");
    let mut sim = spec.box_sim(seed).expect("sim");
    let end = SimTime::ZERO + plan.warmup + plan.measure;

    let mut events: Vec<BoxEvent> = Vec::with_capacity(256);
    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        let (_, qspec) = client.pop().expect("peeked arrival");
        sim.inject_query(at, qspec);
        sim.drain_events_into(&mut events);
    }
    // Drain the tail: one generous timeout past the end of the window.
    sim.advance_to(end + SimDuration::from_millis(200));
    sim.drain_events_into(&mut events);

    let outcomes = events
        .into_iter()
        .filter_map(|ev| match ev {
            BoxEvent::QueryDone(out) => Some(out),
            _ => None,
        })
        .collect();
    (outcomes, sim.take_fault_records())
}

/// p99 of completed-query latency over arrivals in `[from, to)`.
fn phase_p99(outcomes: &[QueryOutcome], from: SimTime, to: SimTime) -> SimDuration {
    let mut lat: Vec<SimDuration> = outcomes
        .iter()
        .filter(|o| o.arrival >= from && o.arrival < to && !o.dropped)
        .map(|o| o.latency)
        .collect();
    assert!(
        lat.len() >= 50,
        "phase [{from}, {to}) too thin: {} completions",
        lat.len()
    );
    lat.sort_unstable();
    lat[(lat.len() * 99).div_ceil(100) - 1]
}

#[test]
fn controller_crash_recovery_restores_the_tail() {
    let seed = 42;
    let chaos = spec::named("chaos-controller-crash").expect("registered scenario");

    // The same box with the fault timeline stripped: the steady-state
    // control. Same seed, so the trace and arrival process are identical.
    let mut control = chaos.clone();
    control.fault = FaultSpec::default();
    control.name = "chaos-control".into();

    // The regime the downtime window should resemble: no isolation at all.
    let noiso = ScenarioSpec::builder("chaos-noiso")
        .single_box(2_000.0)
        .cpu_bully(workloads::BullyIntensity::High)
        .policy(Policy::NoIsolation)
        .custom_scale(300, 1_500)
        .seed(seed)
        .build()
        .expect("valid spec");

    let (faulted_out, faults) = run_collect(&chaos, seed);
    let (control_out, control_faults) = run_collect(&control, seed);
    let (noiso_out, _) = run_collect(&noiso, seed);
    assert!(control_faults.is_empty(), "control must not inject faults");

    // The executed timeline matches the plan: one crash at 500 ms, held
    // down for the requested 150 poll intervals, restarted (no give-up)
    // and converged well before the recovery-watch cap.
    assert_eq!(faults.len(), 1, "exactly one fault fires: {faults:?}");
    let f = &faults[0];
    assert_eq!(f.kind, "controller-crash");
    assert_eq!(f.fired_at_ms, 500.0, "crash fires at its planned time");
    assert_eq!(f.downtime_ms, 150.0, "downtime = 150 polls at 1 ms");
    assert!(!f.gave_up, "Autopilot must restart, not give up");
    assert!(
        f.recovery_polls <= 32,
        "controller must reconverge within a few polls, took {}",
        f.recovery_polls
    );

    let crash = SimTime::from_millis(500);
    let up = SimTime::from_millis(650);
    // Convergence margin past restart: the recorded recovery polls plus
    // room for the backlog accumulated during downtime to drain.
    let settled = SimTime::from_millis(650 + 70);
    let end = SimTime::from_millis(1_800);

    let down_p99 = phase_p99(&faulted_out, crash, up);
    let down_control_p99 = phase_p99(&control_out, crash, up);
    let down_noiso_p99 = phase_p99(&noiso_out, crash, up);
    let post_p99 = phase_p99(&faulted_out, settled, end);
    let post_control_p99 = phase_p99(&control_out, settled, end);

    eprintln!(
        "recovery_polls={} down_p99={down_p99} (control {down_control_p99}, \
         no-isolation {down_noiso_p99}) post_p99={post_p99} (control {post_control_p99})",
        f.recovery_polls
    );

    // During the downtime the secondary is unrestricted and the tail
    // collapses into the no-isolation regime (§3.1 / Fig. 4): far above
    // the controlled tail, and at least half the no-isolation tail.
    assert!(
        down_p99 >= down_control_p99.mul_f64(3.0),
        "downtime tail must collapse: {down_p99} vs controlled {down_control_p99}"
    );
    // The sustained no-isolation run carries a queue backlog accumulated
    // since t = 0; a 150 ms downtime window climbs toward that regime but
    // cannot fully reach it, hence the one-sided factor-of-4 band.
    assert!(
        down_p99.mul_f64(4.0) >= down_noiso_p99,
        "downtime tail should reach the no-isolation regime: \
         {down_p99} vs no-isolation {down_noiso_p99}"
    );

    // §4.2: after the restart resumes from the checkpoint, the tail is
    // back within 10 % of the never-crashed run over the same window.
    let budget = post_control_p99.mul_f64(1.10);
    assert!(
        post_p99 <= budget,
        "post-recovery p99 {post_p99} must return to within 10 % of the \
         steady-state p99 {post_control_p99}"
    );
}
