//! Cluster-level integration tests (Fig 3 topology, Fig 9 behaviour) on a
//! scaled-down TLA/MLA/IndexServe cluster, each cell described by a
//! declarative [`scenarios::spec::ScenarioSpec`].

use cluster::{ClusterReport, Topology};
use scenarios::spec::{run_spec, RunOptions, ScenarioBuilder, ScenarioSpec};
use scenarios::Policy;
use simcore::SimDuration;
use workloads::BullyIntensity;

fn small(name: &str, seed: u64) -> ScenarioBuilder {
    ScenarioSpec::builder(name)
        .cluster(Topology::small(), 600.0)
        .policy(Policy::FullPerfIso)
        .custom_scale(200, 800)
        .seed(seed)
}

fn run(builder: ScenarioBuilder) -> ClusterReport {
    let spec = builder.build().expect("valid spec");
    // All cores: with one seed the thread knob reaches the cluster's box
    // advance, which is bit-identical to serial by the pool's guarantee.
    let report = run_spec(&spec, &RunOptions::parallel(None)).expect("runnable spec");
    report.runs[0].as_cluster().expect("cluster target").clone()
}

#[test]
fn layers_aggregate_in_order() {
    // A request is measured at the local IndexServe, the MLA, and the TLA;
    // each layer's latency must dominate the one below (Fig 9's structure).
    let r = run(small("base", 3));
    assert!(r.completed > 300, "completed {}", r.completed);
    assert_eq!(r.degraded, 0);
    assert!(
        r.local.avg <= r.mla.avg,
        "local {} vs mla {}",
        r.local.avg,
        r.mla.avg
    );
    assert!(
        r.mla.avg <= r.tla.avg,
        "mla {} vs tla {}",
        r.mla.avg,
        r.tla.avg
    );
    assert!(r.local.count > 0 && r.mla.count > 0 && r.tla.count > 0);
}

#[test]
fn cpu_bound_secondary_stays_within_band_under_perfiso() {
    // Fig 9b: per-layer p99 deltas vs the baseline stay within ~1 ms.
    let base = run(small("base", 5));
    let colo = run(small("colo", 5).cpu_bully(BullyIntensity::High).hdfs());
    for (name, b, c) in [
        ("local", &base.local, &colo.local),
        ("mla", &base.mla, &colo.mla),
        ("tla", &base.tla, &colo.tla),
    ] {
        let d = c.p99.saturating_sub(b.p99);
        assert!(
            d < SimDuration::from_millis(3),
            "{name} p99 degradation {d} (colo {} base {})",
            c.p99,
            b.p99
        );
    }
    assert!(
        colo.mean_utilization > base.mean_utilization + 0.2,
        "colocation must lift utilization: {} -> {}",
        base.mean_utilization,
        colo.mean_utilization
    );
}

#[test]
fn disk_bound_secondary_stays_within_band_under_perfiso() {
    // Fig 9c: the DiskSPD-style bully on the shared HDD volume.
    let base = run(small("base", 7));
    let colo = run(small("colo", 7)
        .disk_bully(workloads::DiskBully::default())
        .hdfs());
    let d = colo.tla.p99.saturating_sub(base.tla.p99);
    assert!(d < SimDuration::from_millis(3), "tla p99 degradation {d}");
}

#[test]
fn topology_math_checks_out() {
    let t = Topology::paper_cluster();
    assert_eq!(t.columns, 22);
    assert_eq!(t.rows, 2);
    assert_eq!(t.tlas, 31);
    assert_eq!(t.index_machines(), 44);
    assert_eq!(t.total_machines(), 75, "the paper's 75-machine cluster");
    t.validate().expect("paper topology is valid");
    // Round-trips between flat indices and (row, column) positions.
    for row in 0..t.rows {
        for col in 0..t.columns {
            let node = t.index_node(row, col);
            assert_eq!(t.index_position(node), Some((row, col)));
        }
    }
    // TLA nodes are distinct from index nodes.
    for i in 0..t.tlas {
        assert!(t.index_position(t.tla_node(i)).is_none());
    }
}

#[test]
fn unprotected_cluster_degrades() {
    // Without PerfIso the same CPU bully wrecks the end-to-end tail — the
    // cluster inherits the single-box no-isolation behaviour.
    let base = run(small("base", 11));
    let colo = run(small("colo", 11)
        .cpu_bully(BullyIntensity::High)
        .policy(Policy::NoIsolation));
    let d = colo.tla.p99.saturating_sub(base.tla.p99);
    assert!(
        d > SimDuration::from_millis(5),
        "unprotected cluster should degrade clearly, got {d}"
    );
}
