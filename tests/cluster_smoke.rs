//! Cluster-level integration tests (Fig 3 topology, Fig 9 behaviour) on a
//! scaled-down TLA/MLA/IndexServe cluster.

use cluster::{ClusterConfig, ClusterSim, Topology};
use indexserve::SecondaryKind;
use simcore::SimDuration;
use workloads::BullyIntensity;

fn small(secondary: SecondaryKind, seed: u64) -> ClusterConfig {
    ClusterConfig {
        topology: Topology::small(),
        qps_total: 600.0,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(800),
        ..ClusterConfig::paper_cluster(secondary, seed)
    }
}

#[test]
fn layers_aggregate_in_order() {
    // A request is measured at the local IndexServe, the MLA, and the TLA;
    // each layer's latency must dominate the one below (Fig 9's structure).
    let r = ClusterSim::new(small(SecondaryKind::none(), 3)).run();
    assert!(r.completed > 300, "completed {}", r.completed);
    assert_eq!(r.degraded, 0);
    assert!(
        r.local.avg <= r.mla.avg,
        "local {} vs mla {}",
        r.local.avg,
        r.mla.avg
    );
    assert!(
        r.mla.avg <= r.tla.avg,
        "mla {} vs tla {}",
        r.mla.avg,
        r.tla.avg
    );
    assert!(r.local.count > 0 && r.mla.count > 0 && r.tla.count > 0);
}

#[test]
fn cpu_bound_secondary_stays_within_band_under_perfiso() {
    // Fig 9b: per-layer p99 deltas vs the baseline stay within ~1 ms.
    let base = ClusterSim::new(small(SecondaryKind::none(), 5)).run();
    let colo = ClusterSim::new(small(
        SecondaryKind {
            cpu_bully: Some(BullyIntensity::High),
            disk_bully: None,
            hdfs: true,
        },
        5,
    ))
    .run();
    for (name, b, c) in [
        ("local", &base.local, &colo.local),
        ("mla", &base.mla, &colo.mla),
        ("tla", &base.tla, &colo.tla),
    ] {
        let d = c.p99.saturating_sub(b.p99);
        assert!(
            d < SimDuration::from_millis(3),
            "{name} p99 degradation {d} (colo {} base {})",
            c.p99,
            b.p99
        );
    }
    assert!(
        colo.mean_utilization > base.mean_utilization + 0.2,
        "colocation must lift utilization: {} -> {}",
        base.mean_utilization,
        colo.mean_utilization
    );
}

#[test]
fn disk_bound_secondary_stays_within_band_under_perfiso() {
    // Fig 9c: the DiskSPD-style bully on the shared HDD volume.
    let base = ClusterSim::new(small(SecondaryKind::none(), 7)).run();
    let colo = ClusterSim::new(small(
        SecondaryKind {
            cpu_bully: None,
            disk_bully: Some(workloads::DiskBully::default()),
            hdfs: true,
        },
        7,
    ))
    .run();
    let d = colo.tla.p99.saturating_sub(base.tla.p99);
    assert!(d < SimDuration::from_millis(3), "tla p99 degradation {d}");
}

#[test]
fn topology_math_checks_out() {
    let t = Topology::paper_cluster();
    assert_eq!(t.columns, 22);
    assert_eq!(t.rows, 2);
    assert_eq!(t.tlas, 31);
    assert_eq!(t.index_machines(), 44);
    assert_eq!(t.total_machines(), 75, "the paper's 75-machine cluster");
    t.validate().expect("paper topology is valid");
    // Round-trips between flat indices and (row, column) positions.
    for row in 0..t.rows {
        for col in 0..t.columns {
            let node = t.index_node(row, col);
            assert_eq!(t.index_position(node), Some((row, col)));
        }
    }
    // TLA nodes are distinct from index nodes.
    for i in 0..t.tlas {
        assert!(t.index_position(t.tla_node(i)).is_none());
    }
}

#[test]
fn unprotected_cluster_degrades() {
    // Without PerfIso the same CPU bully wrecks the end-to-end tail — the
    // cluster inherits the single-box no-isolation behaviour.
    let base = ClusterSim::new(small(SecondaryKind::none(), 11)).run();
    let mut cfg = small(
        SecondaryKind {
            cpu_bully: Some(BullyIntensity::High),
            disk_bully: None,
            hdfs: false,
        },
        11,
    );
    cfg.perfiso = None;
    let colo = ClusterSim::new(cfg).run();
    let d = colo.tla.p99.saturating_sub(base.tla.p99);
    assert!(
        d > SimDuration::from_millis(5),
        "unprotected cluster should degrade clearly, got {d}"
    );
}
