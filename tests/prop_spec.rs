//! Property-based coverage of the spec layer: randomly generated
//! [`ScenarioSpec`]s (including controller overrides and sweeps) must
//! never panic in `validate()`, and every spec that validates must
//! round-trip bit-identically through its JSON form.

use proptest::prelude::*;
use scenarios::spec::{
    AdmissionSpec, BreakerSpec, ControllerSpec, CurveSpec, EdgeSpec, FaultEvent, FaultSpec,
    FleetProductionSpec, HedgeSpec, ResilienceSpec, RestartSpec, RetrySpec, ScaleSpec,
    ScenarioSpec, ServiceGraphSpec, ServiceLoadSpec, SpecError, StageSpec, SweepAxis, SweepSpec,
    TargetSpec, TelemetrySpec, TenantLimitSpec, WorkloadSpec,
};
use scenarios::Policy;
use workloads::BullyIntensity;

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Standalone),
        Just(Policy::NoIsolation),
        Just(Policy::FullPerfIso),
        // Includes out-of-range parameters on purpose: validation must
        // reject them with an error, never a panic.
        (0u32..64).prop_map(|b| Policy::Blind { buffer_cores: b }),
        (0u32..64).prop_map(Policy::StaticCores),
        (-0.5f64..1.5).prop_map(Policy::CycleCap),
    ]
}

fn secondary_strategy() -> impl Strategy<Value = indexserve::SecondaryKind> {
    (
        proptest::option::of(prop_oneof![
            Just(BullyIntensity::Mid),
            Just(BullyIntensity::High),
            (1u32..64).prop_map(BullyIntensity::Custom),
        ]),
        proptest::option::of((1u32..8).prop_map(|depth| workloads::DiskBully {
            depth,
            ..workloads::DiskBully::default()
        })),
        any::<bool>(),
    )
        .prop_map(|(cpu_bully, disk_bully, hdfs)| indexserve::SecondaryKind {
            cpu_bully,
            disk_bully,
            hdfs,
        })
}

fn target_strategy() -> impl Strategy<Value = TargetSpec> {
    // Roster entries straddle validity: zero qps, empty/duplicate names
    // (name collisions arise naturally from the tiny name pool), and
    // working sets big enough that two of them overflow the box.
    let service = (
        prop_oneof![
            Just(String::new()),
            Just("web".to_string()),
            Just("ads".to_string()),
        ],
        prop_oneof![Just(0.0f64), 100.0f64..3_000.0],
        prop_oneof![Just(0u64), 1_024u64..70_000],
    )
        .prop_map(|(name, qps, working_set_mb)| ServiceLoadSpec {
            name,
            qps,
            working_set_mb,
        });
    // Fleet targets straddle validity the same way: zero minutes/samples/
    // slices, zero trainer workers, zero-QPS flat curves, and zero-stride
    // production extensions must all be rejected, never panic.
    let fleet = (
        (0u32..20, 0u32..4, prop_oneof![Just(0u64), 50u64..300]),
        prop_oneof![
            Just(CurveSpec::PaperHour),
            Just(CurveSpec::ProductionDay),
            prop_oneof![Just(0.0f64), 500.0f64..3_000.0].prop_map(|qps| CurveSpec::Flat { qps }),
        ],
        prop_oneof![Just(0u32), 1u32..32],
        proptest::option::of((0u32..20, any::<bool>(), any::<bool>()).prop_map(
            |(minute_stride, heterogeneous_shapes, tenant_churn)| FleetProductionSpec {
                minute_stride,
                heterogeneous_shapes,
                tenant_churn,
            },
        )),
    )
        .prop_map(
            |((minutes, sampled_machines, slice_ms), curve, workers, production)| {
                TargetSpec::Fleet {
                    fleet_machines: 650,
                    sampled_machines,
                    minutes,
                    slice_ms,
                    curve,
                    trainer: workloads::MlTrainer {
                        workers,
                        minibatch: simcore::SimDuration::from_millis(2),
                        steps_per_sync: 20,
                        sync_pause: simcore::SimDuration::from_millis(8),
                    },
                    production,
                }
            },
        );
    prop_oneof![
        prop_oneof![Just(0.0f64), 100.0f64..5_000.0].prop_map(|qps| TargetSpec::SingleBox { qps }),
        proptest::collection::vec(service, 0..6)
            .prop_map(|services| TargetSpec::MultiBox { services }),
        (0u32..4, 0u32..3, 0u32..3, (100.0f64..2_000.0)).prop_map(
            |(columns, rows, tlas, qps_total)| TargetSpec::Cluster {
                columns,
                rows,
                tlas,
                qps_total,
            }
        ),
        fleet,
    ]
}

/// Service graphs straddle validity exactly like the other strategies:
/// empty graphs, zero fan-outs, dangling edge names, self-loops, and —
/// because edges are drawn from a tiny stage-name pool in both
/// directions — cycles, all alongside genuinely well-formed DAGs.
fn graph_strategy() -> impl Strategy<Value = ServiceGraphSpec> {
    let stage_name = || {
        prop_oneof![
            Just("".to_string()),
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            Just("d".to_string()),
        ]
    };
    let stage = (
        stage_name(),
        prop_oneof![Just(0u32), 1u32..16],
        prop_oneof![Just(0.0f64), 50.0f64..500.0],
        0.0f64..0.6,
        prop_oneof![Just(0u64), 64u64..4_096],
    )
        .prop_map(|(name, fan_out, compute_us, sigma, memory_mb)| StageSpec {
            name,
            fan_out,
            compute_us,
            sigma,
            memory_mb,
        });
    let edge_name = || {
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            Just("d".to_string()),
            Just("dangling".to_string()),
        ]
    };
    let edge = (edge_name(), edge_name(), 1u64..65_536, 0u64..200).prop_map(
        |(from, to, bytes, latency_us)| EdgeSpec {
            from,
            to,
            bytes,
            latency_us,
        },
    );
    (
        proptest::collection::vec(stage, 0..5),
        proptest::collection::vec(edge, 0..6),
        prop_oneof![Just(0u64), 1u64..100],
    )
        .prop_map(|(stages, edges, timeout_ms)| ServiceGraphSpec {
            stages,
            edges,
            timeout_ms,
        })
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::IndexServe),
        Just(WorkloadSpec::IndexServe),
        graph_strategy().prop_map(WorkloadSpec::ServiceGraph),
    ]
}

/// Knob values deliberately straddle the valid range (`Just(0)` /
/// watermark 1.5 are invalid) so both branches of validation are hit.
fn controller_strategy() -> impl Strategy<Value = ControllerSpec> {
    // Three valid arms to one invalid keeps the generator mostly in
    // range, so the round-trip branch gets real coverage too.
    let us = || {
        proptest::option::of(prop_oneof![
            Just(0u64),
            100u64..100_000,
            100u64..100_000,
            100u64..100_000,
        ])
    };
    let tenant = (
        prop_oneof![
            Just(String::new()),
            Just("hdfs-client".to_string()),
            Just("hdfs-replication".to_string()),
            Just("disk-bully".to_string()),
        ],
        proptest::option::of(1u64..500),
        proptest::option::of(10u64..5_000),
    )
        .prop_map(|(service, mbps, iops)| TenantLimitSpec {
            service,
            mbps,
            iops,
        });
    (
        (proptest::option::of(0u32..64), us(), us(), us()),
        (
            proptest::option::of(prop_oneof![Just(0u64), 64u64..16_384]),
            proptest::option::of(prop_oneof![
                Just(0.0f64),
                0.05f64..1.0,
                Just(1.0f64),
                Just(1.5f64),
            ]),
            proptest::option::of(prop_oneof![Just(0u64), 1u64..1_000]),
            proptest::collection::vec(tenant, 0..3),
        ),
    )
        .prop_map(
            |(
                (buffer_cores, cpu_poll_interval_us, io_poll_interval_us, memory_poll_interval_us),
                (secondary_memory_limit_mb, memory_kill_watermark, egress_low_mbps, tenant_limits),
            )| ControllerSpec {
                buffer_cores,
                cpu_poll_interval_us,
                io_poll_interval_us,
                memory_poll_interval_us,
                secondary_memory_limit_mb,
                memory_kill_watermark,
                egress_low_mbps,
                tenant_limits,
            },
        )
}

fn sweep_strategy() -> impl Strategy<Value = Option<SweepSpec>> {
    let axis = prop_oneof![
        proptest::collection::vec(prop_oneof![Just(0u32), 1u32..16], 0..3)
            .prop_map(SweepAxis::BufferCores),
        proptest::collection::vec(prop_oneof![Just(0u64), 500u64..50_000], 0..3)
            .prop_map(SweepAxis::CpuPollIntervalUs),
        proptest::collection::vec(0.05f64..1.2, 0..3).prop_map(SweepAxis::MemoryKillWatermark),
        proptest::collection::vec(1u64..200, 0..3).prop_map(|mbps| SweepAxis::TenantIoMbps {
            service: "hdfs-client".into(),
            mbps,
        }),
    ];
    proptest::option::of(proptest::collection::vec(axis, 0..3).prop_map(|axes| SweepSpec { axes }))
}

/// Fault timelines straddle the valid range like the controller knobs:
/// zero backoff/multiplier/max-failures, empty rollout keys, and
/// out-of-range stage percentages must all be *rejected*, never panic.
fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    let event = prop_oneof![
        (0u64..1_000, 0u32..300).prop_map(|(at_ms, downtime_polls)| FaultEvent::ControllerCrash {
            at_ms,
            downtime_polls,
        }),
        (0u64..1_000, 0u64..500)
            .prop_map(|(at_ms, downtime_ms)| FaultEvent::SecondaryRestart { at_ms, downtime_ms }),
        (0u64..1_000, 0u64..500)
            .prop_map(|(at_ms, downtime_ms)| FaultEvent::BoxRestart { at_ms, downtime_ms }),
        (
            0u64..1_000,
            prop_oneof![Just(String::new()), Just("doc".to_string())],
            0u8..=150,
            proptest::option::of(prop_oneof![Just(0u64), 1u64..100]),
        )
            .prop_map(|(at_ms, key, staged_pct, rollback_p99_ms)| {
                FaultEvent::ConfigRollout {
                    at_ms,
                    key,
                    doc: ControllerSpec::default(),
                    staged_pct,
                    rollback_p99_ms,
                }
            }),
    ];
    (
        proptest::collection::vec(event, 0..3),
        (0u64..2_000, 0u32..4, 0u32..6),
    )
        .prop_map(
            |(events, (base_backoff_ms, multiplier, max_failures))| FaultSpec {
                events,
                restart: RestartSpec {
                    base_backoff_ms,
                    multiplier,
                    max_failures,
                },
            },
        )
}

/// Resilience policies straddling validity: zero admission caps, zero
/// backoff, over-budget retries, and hedge percentiles at and outside
/// the open (0, 1) interval must all be rejected with an error, never a
/// panic; the valid combinations must round-trip.
fn resilience_strategy() -> impl Strategy<Value = ResilienceSpec> {
    (
        proptest::option::of(
            (0u64..64, 0u64..16).prop_map(|(max_in_flight, queue_depth)| AdmissionSpec {
                max_in_flight,
                queue_depth,
            }),
        ),
        proptest::option::of((0u64..10, 0u32..4, 0u32..24, 0u64..4).prop_map(
            |(base_backoff_ms, multiplier, budget, jitter_ms)| RetrySpec {
                base_backoff_ms,
                multiplier,
                budget,
                jitter_ms,
            },
        )),
        proptest::option::of(
            prop_oneof![Just(0.0f64), Just(0.5), Just(0.99), Just(1.0)]
                .prop_map(|percentile| HedgeSpec { percentile }),
        ),
        proptest::option::of((0u32..8, 0u64..200).prop_map(|(threshold, cooldown_ms)| {
            BreakerSpec {
                threshold,
                cooldown_ms,
            }
        })),
        any::<bool>(),
    )
        .prop_map(
            |(admission, retry, hedge, breaker, propagate_deadlines)| ResilienceSpec {
                admission,
                retry,
                hedge,
                breaker,
                propagate_deadlines,
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            prop_oneof![
                Just("prop-spec".to_string()),
                Just("p".to_string()),
                Just(String::new()),
                Just("has space".to_string()),
            ],
            target_strategy(),
            workload_strategy(),
            secondary_strategy(),
        ),
        (policy_strategy(), controller_strategy(), sweep_strategy()),
        (
            prop_oneof![
                Just(ScaleSpec::Quick),
                (0u64..300, 0u64..500).prop_map(|(warmup_ms, measure_ms)| ScaleSpec::Custom {
                    warmup_ms,
                    measure_ms,
                }),
            ],
            any::<u64>(),
            0u32..4,
            fault_strategy(),
            prop_oneof![Just(TelemetrySpec::Exact), Just(TelemetrySpec::Sketch)],
        ),
        resilience_strategy(),
    )
        .prop_map(
            |(
                (name, target, workload, secondary),
                (policy, controller, sweep),
                (scale, seed, seeds, fault, telemetry),
                resilience,
            )| {
                ScenarioSpec {
                    name,
                    description: "generated by proptest".into(),
                    target,
                    workload,
                    secondary,
                    policy,
                    controller,
                    sweep,
                    scale,
                    seed,
                    seeds,
                    fault,
                    telemetry,
                    resilience,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `validate()` must classify every generated spec — valid or broken
    /// — with `Ok`/`Err`, never a panic; and everything it accepts must
    /// survive a JSON round trip unchanged.
    #[test]
    fn prop_validate_never_panics_and_valid_specs_round_trip(spec in spec_strategy()) {
        match spec.validate() {
            Ok(()) => {
                let text = spec.to_json();
                let back = ScenarioSpec::from_json(&text)
                    .expect("a valid spec's JSON must load back");
                prop_assert_eq!(back, spec);
            }
            Err(e) => {
                // Errors must render (no panicking Display impls).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// `check_shape()` must classify every generated graph — including
    /// empty graphs, cycles, and dangling edges — with `Ok`/`Err`, never
    /// a panic; accepted graphs must convert to an executable workload
    /// and round-trip through JSON bit-identically.
    #[test]
    fn prop_graph_check_shape_never_panics_and_valid_graphs_round_trip(
        graph in graph_strategy()
    ) {
        match graph.check_shape() {
            Ok(()) => {
                let wl = graph.to_workload().expect("accepted graph converts");
                prop_assert_eq!(wl.stages.len(), graph.stages.len());
                let text = serde_json::to_string(&graph).expect("serializes");
                let back: ServiceGraphSpec =
                    serde_json::from_str(&text).expect("parses back");
                prop_assert_eq!(&back, &graph);
                // Bit-identical: re-serializing reproduces the same bytes.
                prop_assert_eq!(
                    serde_json::to_string(&back).expect("serializes"),
                    text
                );
            }
            Err(e) => prop_assert!(!e.is_empty(), "error must describe the defect"),
        }
    }

    /// Sweep expansion of accepted specs yields only valid, sweep-free
    /// cells, exactly `cell_count()` of them.
    #[test]
    fn prop_accepted_sweeps_expand_to_valid_cells(spec in spec_strategy()) {
        if spec.validate().is_ok() && spec.sweep.is_some() {
            let cells = spec.expand_sweep().expect("validated sweep expands");
            prop_assert_eq!(cells.len(), spec.sweep.as_ref().unwrap().cell_count());
            for cell in cells {
                prop_assert!(cell.spec.sweep.is_none());
                prop_assert!(cell.spec.validate().is_ok());
            }
        }
    }
}

/// The issue's named bad inputs must be `Err` — never a panic and never
/// silently accepted.
#[test]
fn named_bad_inputs_are_rejected_without_panicking() {
    let base = || {
        let mut s = ScenarioSpec::builder("bad")
            .cpu_bully(BullyIntensity::Mid)
            .policy(Policy::Blind { buffer_cores: 8 })
            .build()
            .unwrap();
        s.controller = ControllerSpec::default();
        s
    };
    // Zero poll interval.
    let mut s = base();
    s.controller.cpu_poll_interval_us = Some(0);
    assert!(matches!(s.validate(), Err(SpecError::InvalidController(_))));
    // Watermark outside (0, 1].
    for w in [0.0, -0.2, 1.01, f64::NAN] {
        let mut s = base();
        s.controller.memory_kill_watermark = Some(w);
        assert!(
            matches!(s.validate(), Err(SpecError::InvalidController(_))),
            "watermark {w} accepted"
        );
    }
    // Buffer cores >= the machine's 48 logical cores.
    for b in [48, 64, u32::MAX] {
        let mut s = base();
        s.controller.buffer_cores = Some(b);
        assert!(
            matches!(s.validate(), Err(SpecError::InvalidController(_))),
            "buffer_cores {b} accepted"
        );
    }
}

/// The canonical malformed graphs must be `Err` with a telling message —
/// never a panic, a hang (the cycle check is iterative), or acceptance.
#[test]
fn named_bad_graphs_are_rejected_without_panicking() {
    let stage = |name: &str| StageSpec {
        name: name.to_string(),
        fan_out: 2,
        compute_us: 100.0,
        sigma: 0.2,
        memory_mb: 128,
    };
    let edge = |from: &str, to: &str| EdgeSpec {
        from: from.to_string(),
        to: to.to_string(),
        bytes: 1_024,
        latency_us: 10,
    };
    // Empty graph.
    let empty = ServiceGraphSpec {
        stages: Vec::new(),
        edges: Vec::new(),
        timeout_ms: 10,
    };
    assert!(empty.check_shape().unwrap_err().contains("no stages"));
    // Two-stage cycle.
    let cycle = ServiceGraphSpec {
        stages: vec![stage("a"), stage("b")],
        edges: vec![edge("a", "b"), edge("b", "a")],
        timeout_ms: 10,
    };
    assert!(cycle.check_shape().unwrap_err().contains("cycle"));
    // Self-loop.
    let lasso = ServiceGraphSpec {
        stages: vec![stage("a")],
        edges: vec![edge("a", "a")],
        timeout_ms: 10,
    };
    assert!(lasso.check_shape().unwrap_err().contains("self-loop"));
    // Longer cycle threaded through a valid prefix.
    let ring = ServiceGraphSpec {
        stages: vec![stage("a"), stage("b"), stage("c"), stage("d")],
        edges: vec![
            edge("a", "b"),
            edge("b", "c"),
            edge("c", "d"),
            edge("d", "b"),
        ],
        timeout_ms: 10,
    };
    assert!(ring.check_shape().unwrap_err().contains("cycle"));
    // A valid spec embedding an invalid graph is rejected as a whole.
    let mut s = ScenarioSpec::builder("bad-graph").build().unwrap();
    s.workload = WorkloadSpec::ServiceGraph(cycle);
    assert!(matches!(s.validate(), Err(SpecError::InvalidWorkload(_))));
    // Graph workloads only run on single-box targets.
    let ok_graph = ServiceGraphSpec {
        stages: vec![stage("a"), stage("b")],
        edges: vec![edge("a", "b")],
        timeout_ms: 10,
    };
    assert!(ok_graph.check_shape().is_ok());
    let mut s = ScenarioSpec::builder("graph-on-cluster").build().unwrap();
    s.workload = WorkloadSpec::ServiceGraph(ok_graph);
    s.target = TargetSpec::Cluster {
        columns: 2,
        rows: 1,
        tlas: 1,
        qps_total: 500.0,
    };
    assert!(matches!(s.validate(), Err(SpecError::InvalidWorkload(_))));
    // Multi-box rosters must fit the machine's memory.
    let mut s = ScenarioSpec::builder("oversize").build().unwrap();
    s.target = TargetSpec::MultiBox {
        services: vec![
            ServiceLoadSpec {
                name: "web".into(),
                qps: 1_000.0,
                working_set_mb: 90_000,
            },
            ServiceLoadSpec {
                name: "ads".into(),
                qps: 1_000.0,
                working_set_mb: 90_000,
            },
        ],
    };
    assert!(matches!(s.validate(), Err(SpecError::InvalidWorkload(_))));
}
