//! Property-based coverage of the spec layer: randomly generated
//! [`ScenarioSpec`]s (including controller overrides and sweeps) must
//! never panic in `validate()`, and every spec that validates must
//! round-trip bit-identically through its JSON form.

use proptest::prelude::*;
use scenarios::spec::{
    ControllerSpec, FaultEvent, FaultSpec, RestartSpec, ScaleSpec, ScenarioSpec, SpecError,
    SweepAxis, SweepSpec, TargetSpec, TenantLimitSpec,
};
use scenarios::Policy;
use workloads::BullyIntensity;

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Standalone),
        Just(Policy::NoIsolation),
        Just(Policy::FullPerfIso),
        // Includes out-of-range parameters on purpose: validation must
        // reject them with an error, never a panic.
        (0u32..64).prop_map(|b| Policy::Blind { buffer_cores: b }),
        (0u32..64).prop_map(Policy::StaticCores),
        (-0.5f64..1.5).prop_map(Policy::CycleCap),
    ]
}

fn secondary_strategy() -> impl Strategy<Value = indexserve::SecondaryKind> {
    (
        proptest::option::of(prop_oneof![
            Just(BullyIntensity::Mid),
            Just(BullyIntensity::High),
            (1u32..64).prop_map(BullyIntensity::Custom),
        ]),
        proptest::option::of((1u32..8).prop_map(|depth| workloads::DiskBully {
            depth,
            ..workloads::DiskBully::default()
        })),
        any::<bool>(),
    )
        .prop_map(|(cpu_bully, disk_bully, hdfs)| indexserve::SecondaryKind {
            cpu_bully,
            disk_bully,
            hdfs,
        })
}

fn target_strategy() -> impl Strategy<Value = TargetSpec> {
    prop_oneof![
        prop_oneof![Just(0.0f64), 100.0f64..5_000.0].prop_map(|qps| TargetSpec::SingleBox { qps }),
        (0u32..4, 0u32..3, 0u32..3, (100.0f64..2_000.0)).prop_map(
            |(columns, rows, tlas, qps_total)| TargetSpec::Cluster {
                columns,
                rows,
                tlas,
                qps_total,
            }
        ),
    ]
}

/// Knob values deliberately straddle the valid range (`Just(0)` /
/// watermark 1.5 are invalid) so both branches of validation are hit.
fn controller_strategy() -> impl Strategy<Value = ControllerSpec> {
    // Three valid arms to one invalid keeps the generator mostly in
    // range, so the round-trip branch gets real coverage too.
    let us = || {
        proptest::option::of(prop_oneof![
            Just(0u64),
            100u64..100_000,
            100u64..100_000,
            100u64..100_000,
        ])
    };
    let tenant = (
        prop_oneof![
            Just(String::new()),
            Just("hdfs-client".to_string()),
            Just("hdfs-replication".to_string()),
            Just("disk-bully".to_string()),
        ],
        proptest::option::of(1u64..500),
        proptest::option::of(10u64..5_000),
    )
        .prop_map(|(service, mbps, iops)| TenantLimitSpec {
            service,
            mbps,
            iops,
        });
    (
        (proptest::option::of(0u32..64), us(), us(), us()),
        (
            proptest::option::of(prop_oneof![Just(0u64), 64u64..16_384]),
            proptest::option::of(prop_oneof![
                Just(0.0f64),
                0.05f64..1.0,
                Just(1.0f64),
                Just(1.5f64),
            ]),
            proptest::option::of(prop_oneof![Just(0u64), 1u64..1_000]),
            proptest::collection::vec(tenant, 0..3),
        ),
    )
        .prop_map(
            |(
                (buffer_cores, cpu_poll_interval_us, io_poll_interval_us, memory_poll_interval_us),
                (secondary_memory_limit_mb, memory_kill_watermark, egress_low_mbps, tenant_limits),
            )| ControllerSpec {
                buffer_cores,
                cpu_poll_interval_us,
                io_poll_interval_us,
                memory_poll_interval_us,
                secondary_memory_limit_mb,
                memory_kill_watermark,
                egress_low_mbps,
                tenant_limits,
            },
        )
}

fn sweep_strategy() -> impl Strategy<Value = Option<SweepSpec>> {
    let axis = prop_oneof![
        proptest::collection::vec(prop_oneof![Just(0u32), 1u32..16], 0..3)
            .prop_map(SweepAxis::BufferCores),
        proptest::collection::vec(prop_oneof![Just(0u64), 500u64..50_000], 0..3)
            .prop_map(SweepAxis::CpuPollIntervalUs),
        proptest::collection::vec(0.05f64..1.2, 0..3).prop_map(SweepAxis::MemoryKillWatermark),
        proptest::collection::vec(1u64..200, 0..3).prop_map(|mbps| SweepAxis::TenantIoMbps {
            service: "hdfs-client".into(),
            mbps,
        }),
    ];
    proptest::option::of(proptest::collection::vec(axis, 0..3).prop_map(|axes| SweepSpec { axes }))
}

/// Fault timelines straddle the valid range like the controller knobs:
/// zero backoff/multiplier/max-failures, empty rollout keys, and
/// out-of-range stage percentages must all be *rejected*, never panic.
fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    let event = prop_oneof![
        (0u64..1_000, 0u32..300).prop_map(|(at_ms, downtime_polls)| FaultEvent::ControllerCrash {
            at_ms,
            downtime_polls,
        }),
        (0u64..1_000, 0u64..500)
            .prop_map(|(at_ms, downtime_ms)| FaultEvent::SecondaryRestart { at_ms, downtime_ms }),
        (0u64..1_000, 0u64..500)
            .prop_map(|(at_ms, downtime_ms)| FaultEvent::BoxRestart { at_ms, downtime_ms }),
        (
            0u64..1_000,
            prop_oneof![Just(String::new()), Just("doc".to_string())],
            0u8..=150,
            proptest::option::of(prop_oneof![Just(0u64), 1u64..100]),
        )
            .prop_map(|(at_ms, key, staged_pct, rollback_p99_ms)| {
                FaultEvent::ConfigRollout {
                    at_ms,
                    key,
                    doc: ControllerSpec::default(),
                    staged_pct,
                    rollback_p99_ms,
                }
            }),
    ];
    (
        proptest::collection::vec(event, 0..3),
        (0u64..2_000, 0u32..4, 0u32..6),
    )
        .prop_map(
            |(events, (base_backoff_ms, multiplier, max_failures))| FaultSpec {
                events,
                restart: RestartSpec {
                    base_backoff_ms,
                    multiplier,
                    max_failures,
                },
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            prop_oneof![
                Just("prop-spec".to_string()),
                Just("p".to_string()),
                Just(String::new()),
                Just("has space".to_string()),
            ],
            target_strategy(),
            secondary_strategy(),
        ),
        (policy_strategy(), controller_strategy(), sweep_strategy()),
        (
            prop_oneof![
                Just(ScaleSpec::Quick),
                (0u64..300, 0u64..500).prop_map(|(warmup_ms, measure_ms)| ScaleSpec::Custom {
                    warmup_ms,
                    measure_ms,
                }),
            ],
            any::<u64>(),
            0u32..4,
            fault_strategy(),
        ),
    )
        .prop_map(
            |(
                (name, target, secondary),
                (policy, controller, sweep),
                (scale, seed, seeds, fault),
            )| {
                ScenarioSpec {
                    name,
                    description: "generated by proptest".into(),
                    target,
                    secondary,
                    policy,
                    controller,
                    sweep,
                    scale,
                    seed,
                    seeds,
                    fault,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `validate()` must classify every generated spec — valid or broken
    /// — with `Ok`/`Err`, never a panic; and everything it accepts must
    /// survive a JSON round trip unchanged.
    #[test]
    fn prop_validate_never_panics_and_valid_specs_round_trip(spec in spec_strategy()) {
        match spec.validate() {
            Ok(()) => {
                let text = spec.to_json();
                let back = ScenarioSpec::from_json(&text)
                    .expect("a valid spec's JSON must load back");
                prop_assert_eq!(back, spec);
            }
            Err(e) => {
                // Errors must render (no panicking Display impls).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Sweep expansion of accepted specs yields only valid, sweep-free
    /// cells, exactly `cell_count()` of them.
    #[test]
    fn prop_accepted_sweeps_expand_to_valid_cells(spec in spec_strategy()) {
        if spec.validate().is_ok() && spec.sweep.is_some() {
            let cells = spec.expand_sweep().expect("validated sweep expands");
            prop_assert_eq!(cells.len(), spec.sweep.as_ref().unwrap().cell_count());
            for cell in cells {
                prop_assert!(cell.spec.sweep.is_none());
                prop_assert!(cell.spec.validate().is_ok());
            }
        }
    }
}

/// The issue's named bad inputs must be `Err` — never a panic and never
/// silently accepted.
#[test]
fn named_bad_inputs_are_rejected_without_panicking() {
    let base = || {
        let mut s = ScenarioSpec::builder("bad")
            .cpu_bully(BullyIntensity::Mid)
            .policy(Policy::Blind { buffer_cores: 8 })
            .build()
            .unwrap();
        s.controller = ControllerSpec::default();
        s
    };
    // Zero poll interval.
    let mut s = base();
    s.controller.cpu_poll_interval_us = Some(0);
    assert!(matches!(s.validate(), Err(SpecError::InvalidController(_))));
    // Watermark outside (0, 1].
    for w in [0.0, -0.2, 1.01, f64::NAN] {
        let mut s = base();
        s.controller.memory_kill_watermark = Some(w);
        assert!(
            matches!(s.validate(), Err(SpecError::InvalidController(_))),
            "watermark {w} accepted"
        );
    }
    // Buffer cores >= the machine's 48 logical cores.
    for b in [48, 64, u32::MAX] {
        let mut s = base();
        s.controller.buffer_cores = Some(b);
        assert!(
            matches!(s.validate(), Err(SpecError::InvalidController(_))),
            "buffer_cores {b} accepted"
        );
    }
}
