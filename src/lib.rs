//! PerfIso reproduction — umbrella crate.
//!
//! This root package re-exports the workspace crates so that the
//! integration tests in `tests/` and the runnable examples in `examples/`
//! can exercise the whole stack through a single dependency. The actual
//! implementation lives in the `crates/` members:
//!
//! - [`perfiso`] — the paper's contribution: the isolation controller
//!   (CPU blind isolation, DWRR disk throttling, memory watchdog,
//!   egress shaping, kill switch, crash recovery).
//! - [`simcpu`] / [`simdisk`] / [`simnet`] — the simulated machine
//!   substrate (multicore scheduler with affinity + quotas, striped
//!   SSD/HDD volumes, two-priority egress links).
//! - [`indexserve`] — the primary-tenant model calibrated to the paper's
//!   standalone profile, plus the single-box experiment driver.
//! - [`workloads`] — secondary tenants: CPU bully, disk bully, HDFS
//!   client model, ML-trainer batch job.
//! - [`cluster`] — the 75-node TLA/MLA topology and the 650-node fleet.
//! - [`scenarios`] — shared experiment drivers used by tests, examples,
//!   and the per-figure bench targets in `crates/bench`.

pub use autopilot;
pub use cluster;
pub use indexserve;
pub use perfiso;
pub use qtrace;
pub use scenarios;
pub use simcore;
pub use simcpu;
pub use simdisk;
pub use simnet;
pub use telemetry;
pub use workloads;
